package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"highway/internal/core"
	"highway/internal/dynhl"
	"highway/internal/graph"
	"highway/internal/method"
)

// Replication surface: the hooks internal/cluster wires a Server into a
// WAL-shipping replica set with. A follower implements
// ReplicationHandler and registers it with SetReplication, which makes
// the binary listener dispatch TReplAppend/TReplSnapshot frames to it;
// any role installs a stats provider with SetReplicationStats so /stats
// (and /readyz) carry the replication section. The serve package itself
// stays topology-agnostic — it knows how to *receive* replication
// frames and how to expose its frozen state, and nothing about who
// ships to whom (that is internal/cluster's job, see DESIGN.md
// "Replication & routing").

// ErrFenced is wrapped by a ReplicationHandler when a replication frame
// carries an epoch at or below the follower's durable epoch: the sender
// is deposed or replaying already-applied history. Maps to
// wire.CodeFenced on the binary listener.
var ErrFenced = errors.New("serve: replication epoch fenced")

// ReplicationHandler is the follower side of WAL shipping, dispatched
// from the binary listener. Both methods return the follower's durable
// epoch after the frame was handled; implementations must be safe for
// concurrent use (the primary pools connections).
type ReplicationHandler interface {
	// ReplAppend applies one shipped WAL batch (pairs in WAL record
	// encoding — see DecodeWALOps) iff epoch is above the follower's
	// durable epoch, else fails with ErrFenced.
	ReplAppend(epoch uint64, ops [][2]int32) (uint64, error)
	// ReplSnapshot accepts one chunk of a streamed snapshot; the chunk
	// with done=true installs it. A snapshot at or above the follower's
	// epoch is accepted (equality makes resync idempotent); below is
	// ErrFenced.
	ReplSnapshot(epoch uint64, done bool, chunk []byte) (uint64, error)
}

// ReplicationStats is the "replication" section of /stats. The counter
// quartet shipped/acked/lag_batches/lag_ms is always present (zero when
// idle); a primary fills the shipping side, a follower the applying
// side.
type ReplicationStats struct {
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// Epoch is the role's replication frontier: the primary's newest
	// published epoch, or the follower's durable (last applied) epoch.
	Epoch uint64 `json:"epoch"`
	// Shipped counts batches handed to follower queues (primary) —
	// each accepted write batch counts once per follower.
	Shipped int64 `json:"shipped"`
	// Acked counts batches durably acknowledged: by followers (primary
	// role) or applied locally (follower role).
	Acked int64 `json:"acked"`
	// LagBatches is the number of shipped-not-yet-acked batches across
	// all followers (primary), or 0 on a follower.
	LagBatches int64 `json:"lag_batches"`
	// LagMs is the age of the oldest unacked batch (primary), or the
	// time since the follower last applied anything while a transfer
	// was pending. 0 when fully caught up.
	LagMs float64 `json:"lag_ms"`
	// Fenced counts rejected stale-epoch frames (follower) or fenced
	// ship attempts observed (primary).
	Fenced int64 `json:"fenced"`
	// Resyncs counts full snapshot transfers (sent by a primary,
	// installed by a follower).
	Resyncs int64 `json:"resyncs"`
	// Bootstrapped is false on a follower that has not yet installed
	// any state; /readyz answers 503 until it flips.
	Bootstrapped bool `json:"bootstrapped"`
	// Followers is the configured follower count (primary only).
	Followers int `json:"followers,omitempty"`
	// Deposed is true on a primary that observed a fence from a newer
	// primary and stopped shipping.
	Deposed bool `json:"deposed,omitempty"`
}

// SetReplication registers the follower-side handler for
// TReplAppend/TReplSnapshot frames. Must be called before the binary
// listener starts; a server without a handler answers replication
// frames with Malformed.
func (s *Server) SetReplication(h ReplicationHandler) { s.repl = h }

// SetReplicationStats installs the provider for the "replication"
// section of /stats (and the /readyz gating on Bootstrapped). Must be
// called before the listeners start. The provider must be safe for
// concurrent use and may return nil.
func (s *Server) SetReplicationStats(fn func() *ReplicationStats) { s.replStats = fn }

// replicationStats returns the current replication section, or nil when
// no provider is installed.
func (s *Server) replicationStats() *ReplicationStats {
	if s.replStats == nil {
		return nil
	}
	return s.replStats()
}

// Publish atomically swaps the served snapshot for ix at the given
// epoch, adjusting the vertex range checks to the new index. It is how
// a follower makes replicated state visible to its readers; live
// servers publish through their own write path instead and must not mix
// the two.
func (s *Server) Publish(ix method.DistanceIndex, epoch uint64) {
	s.n.Store(int64(ix.Stats().NumVertices))
	s.snap.Store(newSnapshot(ix, epoch))
}

// FrozenState freezes and returns the live server's current graph,
// index and epoch — the state a primary streams to a follower that
// needs a full resync. The returned graph and index are immutable; the
// epoch is the snapshot epoch they correspond to.
func (s *Server) FrozenState() (*graph.Graph, *core.Index, uint64, error) {
	up := s.up
	if up == nil {
		return nil, nil, 0, ErrReadOnly
	}
	up.mu.Lock()
	defer up.mu.Unlock()
	if up.closed {
		return nil, nil, 0, ErrClosed
	}
	g, ix, err := up.dyn.Freeze()
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: freeze: %w", err)
	}
	return g, ix, up.epoch.Load(), nil
}

// EncodeSnapshot streams the single-file graph+index snapshot format
// (magic, graph, labelling — the same bytes writeSnapshot persists next
// to the WAL) to w. It is the payload of a TReplSnapshot transfer.
func EncodeSnapshot(w io.Writer, g *graph.Graph, ix *core.Index) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	if err := g.WriteBinary(w); err != nil {
		return err
	}
	return ix.WriteFormat(w, core.FormatV2)
}

// DecodeSnapshot reads a snapshot produced by EncodeSnapshot (or
// persisted by a rebuild).
func DecodeSnapshot(r io.Reader) (*graph.Graph, *core.Index, error) {
	// One shared buffered reader for all three sections: the graph and
	// index decoders each call bufio.NewReaderSize, which reuses this
	// reader (same or larger buffer) instead of wrapping it — wrapping
	// would read ahead and strand the next section's bytes in a private
	// buffer.
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [len(snapMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != snapMagic {
		return nil, nil, errors.New("serve: not a serving snapshot (bad magic)")
	}
	g, err := graph.ReadBinary(br)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: snapshot graph: %w", err)
	}
	ix, err := core.Read(br, g)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: snapshot index: %w", err)
	}
	return g, ix, nil
}

// EncodeWALOps converts dynhl ops to the WAL pair encoding TReplAppend
// frames carry: inserts as plain (a,b), deletions as one's-complement
// (^a,^b) — the same record encoding HWLWAL01 uses on disk. Appends to
// dst and returns the extended slice.
func EncodeWALOps(dst [][2]int32, ops []dynhl.Op) [][2]int32 {
	for _, op := range ops {
		a, b := walEncode(op)
		dst = append(dst, [2]int32{a, b})
	}
	return dst
}

// DecodeWALOps is the inverse of EncodeWALOps, with the WAL's
// corruption check: a mixed-sign pair is neither a plain insert nor a
// complemented deletion.
func DecodeWALOps(pairs [][2]int32) ([]dynhl.Op, error) {
	ops := make([]dynhl.Op, len(pairs))
	for i, p := range pairs {
		op, ok := walDecode(p[0], p[1])
		if !ok {
			return nil, fmt.Errorf("serve: mixed-sign replicated op {%d,%d}", p[0], p[1])
		}
		ops[i] = op
	}
	return ops, nil
}
