// Package serve turns a highway cover labelling into a concurrent
// query-serving subsystem: the load-bearing entry point between the
// offline index of the paper and a system answering heavy online
// traffic.
//
// A Server wraps one immutable core.Index and answers exact distance
// queries through a pool of per-goroutine Searchers, so concurrent
// requests never contend on scratch buffers. It exposes
//
//   - an HTTP/JSON API (Handler): GET /distance for single pairs,
//     POST /distance/batch to amortize dispatch over many pairs per
//     request, GET /stats for index and per-endpoint latency/QPS
//     counters, GET /healthz for liveness, and GET / for
//     self-documenting help;
//   - a high-throughput stdin/stdout batch mode (RunBatch) that streams
//     "s t" lines through a bounded worker pipeline in input order; and
//   - graceful shutdown via context (ListenAndServe).
//
// All state mutated after construction is held in atomic counters, so
// every method on Server is safe for concurrent use.
package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"highway/internal/core"
	"highway/internal/graph"
)

// Config tunes a Server. The zero value is ready for production use.
type Config struct {
	// MaxBatch caps the number of pairs accepted by one batch request
	// (DefaultMaxBatch when 0). Oversized batches are rejected with 413
	// rather than truncated.
	MaxBatch int
	// ShutdownGrace bounds how long ListenAndServe waits for in-flight
	// requests after its context is cancelled (DefaultShutdownGrace
	// when 0).
	ShutdownGrace time.Duration
}

// DefaultMaxBatch is the largest batch request accepted when
// Config.MaxBatch is zero. At ~2 µs per query this keeps worst-case
// request latency in the tens of milliseconds.
const DefaultMaxBatch = 100_000

// DefaultShutdownGrace is the graceful-shutdown bound used when
// Config.ShutdownGrace is zero.
const DefaultShutdownGrace = 5 * time.Second

// Server serves exact distance queries from a shared Index. Create one
// with New; the zero value is not usable.
type Server struct {
	ix  *core.Index
	g   *graph.Graph
	cfg Config

	// searchers pools scratch state so a request checks out a Searcher,
	// answers its pairs allocation-free, and returns it. sync.Pool (over
	// a fixed shard-per-worker array) lets the pool grow to the true
	// concurrency level under load and shrink when idle.
	searchers sync.Pool

	metrics metricSet
	started time.Time
}

// New returns a Server over ix.
func New(ix *core.Index, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = DefaultShutdownGrace
	}
	s := &Server{ix: ix, g: ix.Graph(), cfg: cfg, started: time.Now()}
	s.searchers.New = func() any { return ix.NewSearcher() }
	return s
}

// Index returns the served index.
func (s *Server) Index() *core.Index { return s.ix }

// acquire checks a Searcher out of the pool; release returns it.
func (s *Server) acquire() *core.Searcher   { return s.searchers.Get().(*core.Searcher) }
func (s *Server) release(sr *core.Searcher) { s.searchers.Put(sr) }

// Distance answers one exact distance query through the pool. It is the
// programmatic equivalent of GET /distance and safe for concurrent use.
func (s *Server) Distance(sv, tv int32) (int32, error) {
	if err := s.checkVertex(sv); err != nil {
		return core.Infinity, err
	}
	if err := s.checkVertex(tv); err != nil {
		return core.Infinity, err
	}
	sr := s.acquire()
	d := sr.Distance(sv, tv)
	s.release(sr)
	return d, nil
}

func (s *Server) checkVertex(v int32) error { return s.g.CheckVertex(v) }

// ListenAndServe serves the HTTP API on addr until ctx is cancelled,
// then shuts down gracefully, waiting up to Config.ShutdownGrace for
// in-flight requests. It returns nil on clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener (tests use
// 127.0.0.1:0 to avoid port races).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler: s.Handler(),
		// Bound slow clients: without these a connection trickling
		// header bytes pins a goroutine forever and stalls Shutdown for
		// the whole grace period.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
