// Package serve turns a highway cover labelling into a concurrent
// query-serving subsystem: the load-bearing entry point between the
// offline index of the paper and a system answering heavy online
// traffic — including traffic that *mutates the graph while queries are
// being served*.
//
// # Reading
//
// A Server answers exact distance queries from an immutable snapshot: a
// core.Index plus its own pool of per-goroutine Searchers, published
// behind an atomic pointer. Readers load the current snapshot, check a
// Searcher out of that snapshot's pool, answer allocation-free, and
// return it — no locks, no contention with writers, ever. It exposes
//
//   - an HTTP/JSON API (Handler): GET /distance for single pairs,
//     POST /distance/batch to amortize dispatch over many pairs per
//     request, GET /stats for index, snapshot and per-endpoint
//     latency/QPS counters, GET /healthz for liveness, and GET / for
//     self-documenting help;
//   - a binary wire protocol listener (ServeBinary, specified in
//     PROTOCOL.md): length-prefixed checksummed frames carrying the
//     same single/batch/insert/stats requests with pipelining, for
//     native clients (internal/hlclient) that cannot afford the
//     HTTP/1 + JSON protocol tax — both listeners may run at once over
//     the same snapshots, pools and metrics;
//   - a high-throughput stdin/stdout batch mode (RunBatch) that streams
//     "s t" lines through a bounded worker pipeline in input order; and
//   - graceful shutdown via context (ListenAndServe).
//
// # Writing (live servers)
//
// A Server built with NewLive or LoadLive additionally accepts edge
// insertions (POST /edges, or InsertEdges from Go) and deletions
// (DELETE /edges, or DeleteEdges). Writers are serialized behind a
// mutex and never block readers: each accepted batch is (1) appended to
// the write-ahead edge log if one is configured (deletions as
// one's-complement records in the same log), (2) applied to a mutable
// dynhl.Index by selective landmark repair — falling back to an inline
// full rebuild when a deletion batch dirties too many landmarks — and
// (3) frozen into a fresh immutable snapshot that is atomically swapped
// in, so the next read observes it.
//
// The WAL makes acknowledged writes durable: appends are batched into
// one fsync per accepted request, and LoadLive replays the log through
// dynhl.FromCore on startup, so a crash loses nothing that was
// acknowledged. When accumulated drift passes a staleness threshold
// (accepted-edge count or label-entry growth; see LiveConfig), the
// server rebuilds the index from scratch in the background with the
// direction-optimizing parallel builder, hot-swaps the fresh snapshot,
// persists it next to the WAL and compacts the log — bounding both
// memory fragmentation and restart replay time. See DESIGN.md for the
// full lifecycle.
//
// All cross-request state is either immutable (snapshots), atomic
// (counters, the snapshot pointer) or mutex-held (the writer state), so
// every method on Server is safe for concurrent use.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"highway/internal/core"
	"highway/internal/failpoint"
	"highway/internal/method"
)

// Config tunes a Server. The zero value is ready for production use.
type Config struct {
	// MaxBatch caps the number of pairs accepted by one batch request
	// and the number of edges accepted by one update request
	// (DefaultMaxBatch when 0). Oversized batches are rejected with 413
	// rather than truncated.
	MaxBatch int
	// ShutdownGrace bounds how long ListenAndServe waits for in-flight
	// requests after its context is cancelled (DefaultShutdownGrace
	// when 0).
	ShutdownGrace time.Duration

	// ReadBudget and WriteBudget bound concurrent in-flight work per
	// request class, in admission cost units (1 + pairs/1024 per
	// request, so big batches weigh proportionally more). Requests over
	// budget are shed before any work with HTTP 429 / wire Overloaded.
	// 0 means DefaultReadBudget/DefaultWriteBudget; negative disables
	// the gate (unlimited).
	ReadBudget  int
	WriteBudget int
}

// DefaultMaxBatch is the largest batch request accepted when
// Config.MaxBatch is zero. At ~2 µs per query this keeps worst-case
// request latency in the tens of milliseconds.
const DefaultMaxBatch = 100_000

// DefaultShutdownGrace is the graceful-shutdown bound used when
// Config.ShutdownGrace is zero.
const DefaultShutdownGrace = 5 * time.Second

// snapshot is one immutable published state of the server: an index and
// the searcher pool bound to it. The index is any method's DistanceIndex
// — the server never looks past the interface on the read path, which is
// what lets hlserve -method serve every labelling through one machinery.
// Searchers hold scratch state sized and aimed at one specific index, so
// every snapshot owns its own pool and a checked-out Searcher is always
// returned to the snapshot it came from.
type snapshot struct {
	ix        method.DistanceIndex
	epoch     uint64
	searchers sync.Pool
}

func newSnapshot(ix method.DistanceIndex, epoch uint64) *snapshot {
	sn := &snapshot{ix: ix, epoch: epoch}
	sn.searchers.New = func() any { return ix.NewSearcher() }
	return sn
}

// Server serves exact distance queries from an atomically swappable
// index snapshot. Create one with New (read-only) or NewLive/LoadLive
// (updatable); the zero value is not usable.
type Server struct {
	cfg Config
	// n is the served vertex count. Inserts add edges, not vertices, so
	// it is constant on live servers — but a replication follower
	// replaces its whole state when it installs a streamed snapshot
	// (Publish), so reads load it atomically.
	n atomic.Int64

	// snap is the current read state. Readers Load it once per request
	// and work against that immutable snapshot; writers publish a new
	// snapshot with Store. Never mutated in place.
	snap atomic.Pointer[snapshot]

	// up holds the writer state of a live server; nil for read-only
	// servers (New).
	up *updater

	// Admission gates: bounded in-flight budgets per request class,
	// shared by both listeners (HTTP and binary traffic drain one pool
	// of capacity, because they drain one pool of CPU).
	readGate  gate
	writeGate gate

	// Replication hooks (see repl.go): both are wired before the
	// listeners start and read-only afterwards.
	repl      ReplicationHandler
	replStats func() *ReplicationStats

	metrics metricSet
	started time.Time
}

// New returns a read-only Server over the highway cover index ix.
func New(ix *core.Index, cfg Config) *Server {
	return newServer(ix, ix.Graph().NumVertices(), cfg)
}

// NewIndex returns a read-only Server over any method's DistanceIndex:
// the generic serving path behind "hlserve serve -method". Only the
// highway cover labelling can additionally serve live updates (NewLive);
// every other method serves frozen.
func NewIndex(ix method.DistanceIndex, cfg Config) *Server {
	return newServer(ix, ix.Stats().NumVertices, cfg)
}

func newServer(ix method.DistanceIndex, n int, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = DefaultShutdownGrace
	}
	s := &Server{cfg: cfg, started: time.Now()}
	s.n.Store(int64(n))
	s.readGate.budget = resolveBudget(cfg.ReadBudget, DefaultReadBudget)
	s.writeGate.budget = resolveBudget(cfg.WriteBudget, DefaultWriteBudget)
	s.snap.Store(newSnapshot(ix, 0))
	return s
}

// Index returns the currently served index snapshot. On a live server a
// later call may return a newer index; the returned index itself is
// immutable and stays valid.
func (s *Server) Index() method.DistanceIndex { return s.snap.Load().ix }

// Epoch returns the current snapshot epoch: 0 at startup, incremented
// every time a write or a background rebuild publishes a new snapshot.
func (s *Server) Epoch() uint64 { return s.snap.Load().epoch }

// acquire loads the current snapshot and checks a Searcher out of its
// pool; release returns the Searcher to the snapshot it came from.
// The serve.query failpoint fires here — once per request, on every
// query path of every protocol — so tests can dilate query time
// without touching the index (only delay actions make sense at this
// site; an error action's error is discarded).
func (s *Server) acquire() (*snapshot, method.Searcher) {
	_ = failpoint.Eval(FPQuery)
	sn := s.snap.Load()
	return sn, sn.searchers.Get().(method.Searcher)
}

func (s *Server) release(sn *snapshot, sr method.Searcher) { sn.searchers.Put(sr) }

// Distance answers one exact distance query against the current
// snapshot. It is the programmatic equivalent of GET /distance and safe
// for concurrent use.
func (s *Server) Distance(sv, tv int32) (int32, error) {
	if err := s.checkVertex(sv); err != nil {
		return core.Infinity, err
	}
	if err := s.checkVertex(tv); err != nil {
		return core.Infinity, err
	}
	sn, sr := s.acquire()
	d := sr.Distance(sv, tv)
	s.release(sn, sr)
	return d, nil
}

// DistanceBatch answers len(pairs) queries with one searcher checkout
// against one consistent snapshot: distances[i] answers pairs[i]. It is
// the programmatic equivalent of POST /distance/batch (and of a binary
// Batch frame). The result is written into dst when it has the
// capacity; dst may be nil. Safe for concurrent use. It is
// DistanceBatchContext without cancellation: the batch always runs to
// completion.
func (s *Server) DistanceBatch(pairs [][2]int32, dst []int32) ([]int32, error) {
	return s.DistanceBatchContext(context.Background(), pairs, dst)
}

// DistanceBatchContext is DistanceBatch with cancellation: the batch is
// dispatched through the snapshot searcher's best execution path (the
// vectorized batch executor when the method provides one, the pair loop
// otherwise) in chunks of method.CancelCheckEvery pairs, and a
// cancelled ctx abandons the remaining pairs within about one chunk.
// On cancellation it returns ctx.Err() and the prefix of answers
// already computed (dst truncated; answers are valid for their pairs).
func (s *Server) DistanceBatchContext(ctx context.Context, pairs [][2]int32, dst []int32) ([]int32, error) {
	if len(pairs) > s.cfg.MaxBatch {
		return nil, fmt.Errorf("batch of %d pairs exceeds limit %d", len(pairs), s.cfg.MaxBatch)
	}
	if i, err := s.checkPairs(pairs); err != nil {
		return nil, fmt.Errorf("pair %d: %w", i, err)
	}
	sn, sr := s.acquire()
	dst, err := method.DistanceBatchContext(ctx, sr, pairs, dst)
	s.release(sn, sr)
	return dst, err
}

// checkVertex validates a vertex id against the served vertex set
// (inserts add edges, never vertices; only a follower's Publish can
// change n).
func (s *Server) checkVertex(v int32) error {
	if n := s.n.Load(); v < 0 || int64(v) >= n {
		return fmt.Errorf("vertex %d out of range [0,%d)", v, n)
	}
	return nil
}

// ListenAndServe serves the HTTP API on addr until ctx is cancelled,
// then shuts down gracefully, waiting up to Config.ShutdownGrace for
// in-flight requests. It returns nil on clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener (tests use
// 127.0.0.1:0 to avoid port races).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler: s.Handler(),
		// Bound slow clients: without these a connection trickling
		// header bytes pins a goroutine forever and stalls Shutdown for
		// the whole grace period.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
