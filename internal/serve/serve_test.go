package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"highway/internal/core"
	"highway/internal/gen"
	"highway/internal/graph"
	"highway/internal/landmark"
	"highway/internal/workload"
)

// testIndex builds a small index over a scale-free graph.
func testIndex(t *testing.T) *core.Index {
	t.Helper()
	g := gen.BarabasiAlbert(500, 3, 42)
	lms, err := landmark.Select(g, landmark.Options{K: 10, Strategy: landmark.Degree})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildParallel(g, lms)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// disconnectedIndex builds an index over a graph with two components, so
// some pairs are unreachable.
func disconnectedIndex(t *testing.T) *core.Index {
	t.Helper()
	// Two disjoint paths: 0-1-2 and 3-4-5.
	g, err := graph.FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Build(g, []int32{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func testServer(t *testing.T, ix *core.Index) (*Server, *httptest.Server) {
	t.Helper()
	s := New(ix, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decoding: %v", url, err)
	}
	return resp.StatusCode
}

func TestDistanceEndpoint(t *testing.T) {
	ix := testIndex(t)
	_, ts := testServer(t, ix)
	for _, p := range workload.RandomPairs(ix.Graph(), 50, 7) {
		var got distanceResponse
		code := getJSON(t, fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, p.S, p.T), &got)
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if want := ix.Distance(p.S, p.T); got.Distance != want {
			t.Fatalf("d(%d,%d) = %d over HTTP, want %d", p.S, p.T, got.Distance, want)
		}
	}

	var e errorBody
	if code := getJSON(t, ts.URL+"/distance?s=0&t=junk", &e); code != http.StatusBadRequest {
		t.Fatalf("non-integer t: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/distance?s=0&t=999999", &e); code != http.StatusBadRequest {
		t.Fatalf("out-of-range t: status %d, want 400", code)
	}
}

func TestBatchEndpointMatchesIndex(t *testing.T) {
	ix := testIndex(t)
	_, ts := testServer(t, ix)
	pairs := workload.RandomPairs(ix.Graph(), 300, 11)
	req := batchRequest{Pairs: make([][]int32, len(pairs))}
	for i, p := range pairs {
		req.Pairs[i] = []int32{p.S, p.T}
	}
	body, _ := json.Marshal(req)
	var got batchResponse
	if code := postJSON(t, ts.URL+"/distance/batch", string(body), &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.Count != len(pairs) || len(got.Distances) != len(pairs) {
		t.Fatalf("count %d, %d distances, want %d", got.Count, len(got.Distances), len(pairs))
	}
	for i, p := range pairs {
		if want := ix.Distance(p.S, p.T); got.Distances[i] != want {
			t.Fatalf("pair %d: d(%d,%d) = %d, want %d", i, p.S, p.T, got.Distances[i], want)
		}
	}
}

func TestBatchEndpointEdgeCases(t *testing.T) {
	_, ts := testServer(t, disconnectedIndex(t))

	t.Run("empty batch", func(t *testing.T) {
		var got batchResponse
		if code := postJSON(t, ts.URL+"/distance/batch", `{"pairs":[]}`, &got); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if got.Count != 0 || len(got.Distances) != 0 {
			t.Fatalf("got %+v, want empty", got)
		}
	})

	t.Run("disconnected pair", func(t *testing.T) {
		var got batchResponse
		code := postJSON(t, ts.URL+"/distance/batch", `{"pairs":[[0,5],[0,2]]}`, &got)
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if got.Distances[0] != core.Infinity {
			t.Fatalf("cross-component distance = %d, want %d", got.Distances[0], core.Infinity)
		}
		if got.Distances[1] != 2 {
			t.Fatalf("same-component distance = %d, want 2", got.Distances[1])
		}
	})

	t.Run("malformed JSON", func(t *testing.T) {
		for _, body := range []string{`{"pairs":[[0,`, `not json`, `{"pairs":[[0,1,2]]}`, `{"nope":1}`, `{"pairs":[[0,1]]}garbage`, `{"pairs":[[0,1]]}{"pairs":[[0,2]]}`} {
			var e errorBody
			if code := postJSON(t, ts.URL+"/distance/batch", body, &e); code != http.StatusBadRequest {
				t.Fatalf("body %q: status %d, want 400", body, code)
			}
			if e.Error == "" {
				t.Fatalf("body %q: empty error message", body)
			}
		}
	})

	t.Run("vertex out of range", func(t *testing.T) {
		var e errorBody
		if code := postJSON(t, ts.URL+"/distance/batch", `{"pairs":[[0,6]]}`, &e); code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
	})
}

func TestBatchEndpointTooLarge(t *testing.T) {
	s := New(disconnectedIndex(t), Config{MaxBatch: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var e errorBody
	code := postJSON(t, ts.URL+"/distance/batch", `{"pairs":[[0,1],[0,2],[1,2]]}`, &e)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", code)
	}
}

func TestStatsAndHealthEndpoints(t *testing.T) {
	ix := testIndex(t)
	_, ts := testServer(t, ix)
	var d distanceResponse
	getJSON(t, ts.URL+"/distance?s=1&t=2", &d)
	var junk errorBody
	getJSON(t, ts.URL+"/distance?s=bad&t=2", &junk)
	var b batchResponse
	postJSON(t, ts.URL+"/distance/batch", `{"pairs":[[1,2],[3,4]]}`, &b)

	var st statsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.Index.NumVertices != ix.Graph().NumVertices() || st.Index.NumLandmarks != ix.NumLandmarks() {
		t.Fatalf("index stats %+v", st.Index)
	}
	dist := st.Endpoints["distance"]
	if dist.Requests != 2 || dist.Errors != 1 || dist.Pairs != 1 {
		t.Fatalf("distance counters %+v", dist)
	}
	batch := st.Endpoints["batch"]
	if batch.Requests != 1 || batch.Pairs != 2 {
		t.Fatalf("batch counters %+v", batch)
	}
	if dist.QPS <= 0 || dist.AvgLatencyUs <= 0 || dist.MaxLatencyUs < dist.AvgLatencyUs {
		t.Fatalf("latency counters %+v", dist)
	}

	var h map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, h)
	}

	var help map[string]any
	if code := getJSON(t, ts.URL+"/", &help); code != http.StatusOK {
		t.Fatalf("help: %d", code)
	}
	if _, ok := help["endpoints"]; !ok {
		t.Fatalf("help body lacks endpoints: %v", help)
	}
}

func TestRunBatchMatchesIndexInOrder(t *testing.T) {
	ix := testIndex(t)
	s := New(ix, Config{})
	pairs := workload.RandomPairs(ix.Graph(), 5000, 3)
	var in bytes.Buffer
	for _, p := range pairs {
		fmt.Fprintf(&in, "%d %d\n", p.S, p.T)
	}
	var out bytes.Buffer
	stats, err := s.RunBatch(&in, &out, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pairs != int64(len(pairs)) {
		t.Fatalf("stats.Pairs = %d, want %d", stats.Pairs, len(pairs))
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(pairs) {
		t.Fatalf("%d output lines, want %d", len(lines), len(pairs))
	}
	sr := ix.NewSearcher()
	for i, p := range pairs {
		if want := fmt.Sprint(sr.Distance(p.S, p.T)); lines[i] != want {
			t.Fatalf("line %d: got %q, want %q", i, lines[i], want)
		}
	}
}

func TestRunBatchBadInput(t *testing.T) {
	ix := testIndex(t)
	s := New(ix, Config{})
	in := strings.NewReader("1 2\n# comment\n\n3 4\n3 nope\n5 6\n")
	var out bytes.Buffer
	if _, err := s.RunBatch(&in2{in}, &out, 2); err == nil {
		t.Fatal("want parse error")
	}
	// Pairs before the bad line were valid and must still be answered, so
	// output truncates at the bad line, not at a chunk boundary.
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d output lines %q, want the 2 pairs before the bad line", len(lines), out.String())
	}
	sr := ix.NewSearcher()
	for i, p := range []workload.Pair{{S: 1, T: 2}, {S: 3, T: 4}} {
		if want := fmt.Sprint(sr.Distance(p.S, p.T)); lines[i] != want {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want)
		}
	}
}

// in2 defeats bytes.Reader fast paths so the scanner exercises real
// buffered reads.
type in2 struct{ r io.Reader }

func (r *in2) Read(p []byte) (int, error) { return r.r.Read(p) }

func TestRunLoadDeterministic(t *testing.T) {
	ix := testIndex(t)
	s := New(ix, Config{})
	var out1, out2 bytes.Buffer
	st1, err := s.RunLoad(&out1, 2000, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunLoad(&out2, 2000, 9, 1); err != nil {
		t.Fatal(err)
	}
	if st1.Pairs != 2000 {
		t.Fatalf("Pairs = %d", st1.Pairs)
	}
	if out1.String() != out2.String() {
		t.Fatal("RunLoad output depends on worker count")
	}
	// Same seed through the workload package gives the same pairs.
	want := workload.RandomPairs(ix.Graph(), 3, 9)
	lines := strings.SplitN(out1.String(), "\n", 4)
	sr := ix.NewSearcher()
	for i, p := range want {
		if lines[i] != fmt.Sprint(sr.Distance(p.S, p.T)) {
			t.Fatalf("line %d: got %q", i, lines[i])
		}
	}
}

func TestGracefulShutdown(t *testing.T) {
	s := New(testIndex(t), Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	var h map[string]string
	if code := getJSON(t, "http://"+ln.Addr().String()+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz before shutdown: %d", code)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after cancel, want nil", err)
	}
}

// TestConcurrentHammer drives one shared Server (and hence one shared
// Index) from many goroutines mixing single and batch HTTP requests.
// Run with -race: it guards the searcher pool and the atomic metrics.
func TestConcurrentHammer(t *testing.T) {
	ix := testIndex(t)
	_, ts := testServer(t, ix)
	pairs := workload.RandomPairs(ix.Graph(), 64, 21)
	want := make([]int32, len(pairs))
	sr := ix.NewSearcher()
	for i, p := range pairs {
		want[i] = sr.Distance(p.S, p.T)
	}
	var body bytes.Buffer
	req := batchRequest{Pairs: make([][]int32, len(pairs))}
	for i, p := range pairs {
		req.Pairs[i] = []int32{p.S, p.T}
	}
	json.NewEncoder(&body).Encode(req)

	const goroutines = 16
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if gi%2 == 0 {
					i := (gi + r) % len(pairs)
					resp, err := http.Get(fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, pairs[i].S, pairs[i].T))
					if err != nil {
						errs <- err
						return
					}
					var got distanceResponse
					err = json.NewDecoder(resp.Body).Decode(&got)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if got.Distance != want[i] {
						errs <- fmt.Errorf("d(%d,%d) = %d, want %d", pairs[i].S, pairs[i].T, got.Distance, want[i])
						return
					}
				} else {
					resp, err := http.Post(ts.URL+"/distance/batch", "application/json", bytes.NewReader(body.Bytes()))
					if err != nil {
						errs <- err
						return
					}
					var got batchResponse
					err = json.NewDecoder(resp.Body).Decode(&got)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					for i := range pairs {
						if got.Distances[i] != want[i] {
							errs <- fmt.Errorf("batch pair %d: %d, want %d", i, got.Distances[i], want[i])
							return
						}
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	total := st.Endpoints["distance"].Requests + st.Endpoints["batch"].Requests
	if total != goroutines*rounds {
		t.Fatalf("metrics counted %d requests, want %d", total, goroutines*rounds)
	}
}

// failWriter fails every write after the first.
type failWriter struct{ writes int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > 1 {
		return 0, errors.New("pipe closed")
	}
	return len(p), nil
}

func TestRunPipelineAbortsOnWriteError(t *testing.T) {
	s := New(testIndex(t), Config{})
	emitted := 0
	_, err := s.runPipeline(&failWriter{}, 2, func(emit func(workload.Pair) error) error {
		st := workload.NewStreamN(int(s.n.Load()), 1)
		for i := 0; i < 10_000_000; i++ {
			emitted++
			if err := emit(st.Next()); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "pipe closed") {
		t.Fatalf("err = %v, want the write error", err)
	}
	if emitted >= 10_000_000 {
		t.Fatal("producer consumed the whole source after the writer failed")
	}
}
