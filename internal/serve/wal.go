package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"highway/internal/dynhl"
	"highway/internal/failpoint"
)

// WAL is a write-ahead edge log: the durability substrate of a live
// server. Every accepted edge mutation — insertion or deletion — is
// appended (and fsynced) to the log *before* it is applied to the
// in-memory labelling, so an acknowledged write survives a crash; on
// startup the log is replayed into a fresh dynamic index (LoadLive).
// Replay is idempotent — the dynamic index treats re-inserting a present
// edge and re-deleting an absent one as no-ops — which keeps the
// crash-recovery protocol simple: it is always safe to replay the whole
// log against any snapshot at or behind the log's tail.
//
// The on-disk format is a fixed 8-byte magic ("HWLWAL01") followed by
// 12-byte records: two little-endian int32 endpoints plus a CRC-32C of
// the pair. A deletion stores the one's complement of both endpoints
// (^a, ^b) — vertex ids are non-negative, so two negative endpoints
// unambiguously mark a delete record while every log written before
// deletions existed (all records non-negative) replays unchanged. A
// torn final record (crash mid-append) or any corrupt tail is detected
// by length, checksum or a mixed-sign endpoint pair and truncated away
// on open; records before it are kept.
//
// A WAL is not safe for concurrent use by itself; the live server
// serializes all calls behind its writer mutex.
type WAL struct {
	path      string
	f         *os.File
	records   int
	recovered []dynhl.Op
	buf       []byte

	// off is the durable end of the log: the byte offset just past the
	// last acknowledged record. A failed append or fsync truncates the
	// file back to off, so the on-disk tail and the acknowledged history
	// can never desync (a restart must not replay edges whose Append
	// returned an error).
	off int64

	// Error counters, readable without the owner's lock (Stats).
	appendErrs  atomic.Int64
	syncErrs    atomic.Int64
	dirSyncErrs atomic.Int64
}

// WALStats is the log's observability section (surfaced under
// /stats as live.wal). The error counters are cumulative since open;
// dir_sync_errors counts best-effort directory fsync failures after
// compaction renames — a durability downgrade operators should see,
// not a request failure.
type WALStats struct {
	Len           int   `json:"len"`
	AppendErrors  int64 `json:"append_errors"`
	SyncErrors    int64 `json:"sync_errors"`
	DirSyncErrors int64 `json:"dir_sync_errors"`
}

// Stats returns the log's current counters. Len is only meaningful
// under the owner's serialization, the error counters are atomic.
func (w *WAL) Stats() WALStats {
	return WALStats{
		Len:           w.records,
		AppendErrors:  w.appendErrs.Load(),
		SyncErrors:    w.syncErrs.Load(),
		DirSyncErrors: w.dirSyncErrs.Load(),
	}
}

const (
	walMagic      = "HWLWAL01"
	walRecordSize = 12 // int32 a, int32 b, crc32c(a,b)
)

var walTable = crc32.MakeTable(crc32.Castagnoli)

func walSum(a, b int32) uint32 {
	var p [8]byte
	binary.LittleEndian.PutUint32(p[0:4], uint32(a))
	binary.LittleEndian.PutUint32(p[4:8], uint32(b))
	return crc32.Checksum(p[:], walTable)
}

// walEncode maps an op to its stored endpoint pair: inserts store the
// endpoints as-is, deletes store both one's-complemented (negative).
func walEncode(op dynhl.Op) (a, b int32) {
	if op.Del {
		return ^op.A, ^op.B
	}
	return op.A, op.B
}

// walDecode is walEncode's inverse. ok is false for a mixed-sign pair,
// which no append ever produces: recovery treats it as tail corruption.
func walDecode(a, b int32) (op dynhl.Op, ok bool) {
	switch {
	case a >= 0 && b >= 0:
		return dynhl.Op{A: a, B: b}, true
	case a < 0 && b < 0:
		return dynhl.Op{A: ^a, B: ^b, Del: true}, true
	default:
		return dynhl.Op{}, false
	}
}

// OpenWAL opens (creating if absent) the edge log at path, scans it,
// truncates any torn or corrupt tail, and retains the surviving records
// for Recovered. The file stays open for appends until Close.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	w := &WAL{path: path, f: f}
	if err := w.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// recover scans the log from the start, keeping every intact record and
// truncating the file at the first torn or corrupt one.
func (w *WAL) recover() error {
	info, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat: %w", err)
	}
	if info.Size() == 0 {
		// Fresh log: stamp the magic so a later open can tell "new log"
		// from "not a log".
		if _, err := w.f.Write([]byte(walMagic)); err != nil {
			return fmt.Errorf("wal: init: %w", err)
		}
		w.off = int64(len(walMagic))
		return w.f.Sync()
	}
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(w.f, magic[:]); err != nil || string(magic[:]) != walMagic {
		return fmt.Errorf("wal: %s is not an edge log (bad magic)", w.path)
	}
	good := int64(len(walMagic))
	rec := make([]byte, walRecordSize)
	for {
		_, err := io.ReadFull(w.f, rec)
		if err != nil {
			break // EOF or torn tail: keep what we have
		}
		a := int32(binary.LittleEndian.Uint32(rec[0:4]))
		b := int32(binary.LittleEndian.Uint32(rec[4:8]))
		if binary.LittleEndian.Uint32(rec[8:12]) != walSum(a, b) {
			break // corrupt record: everything after it is suspect
		}
		op, ok := walDecode(a, b)
		if !ok {
			break // mixed-sign endpoints: no append writes these
		}
		w.recovered = append(w.recovered, op)
		good += walRecordSize
	}
	w.records = len(w.recovered)
	if good != info.Size() {
		if err := w.f.Truncate(good); err != nil {
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := w.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	w.off = good
	return nil
}

// Recovered returns the ops that were in the log when it was opened, in
// append order. The caller replays them and must not modify the slice.
func (w *WAL) Recovered() []dynhl.Op { return w.recovered }

// Len returns the number of records currently in the log.
func (w *WAL) Len() int { return w.records }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// SnapshotPath returns the path of the compacted graph+index snapshot
// written next to the log by a background rebuild (a single file, so
// the graph and the index can never be persisted out of step). LoadLive
// prefers it over the base files when it exists.
func (w *WAL) SnapshotPath() string { return w.path + ".snap" }

// Append logs a batch of insertions; AppendOps is the general form.
func (w *WAL) Append(edges [][2]int32) error {
	return w.AppendOps(dynhl.InsertOps(edges))
}

// AppendOps logs a batch of edge mutations with a single fsync (group
// commit: the whole batch becomes durable together, amortizing the sync
// over the batch). The ops are durable when AppendOps returns nil.
//
// On any failure — write error, short write, fsync error — the file is
// truncated back to the last acknowledged record before the error is
// returned, so a restart never replays ops the caller was told were not
// accepted. If even the truncation fails the WAL fails stop.
func (w *WAL) AppendOps(ops []dynhl.Op) error {
	if w.f == nil {
		return fmt.Errorf("wal: log handle lost (failed compaction reopen or closed)")
	}
	if len(ops) == 0 {
		return nil
	}
	w.buf = w.buf[:0]
	for _, op := range ops {
		a, b := walEncode(op)
		var rec [walRecordSize]byte
		binary.LittleEndian.PutUint32(rec[0:4], uint32(a))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(b))
		binary.LittleEndian.PutUint32(rec[8:12], walSum(a, b))
		w.buf = append(w.buf, rec[:]...)
	}
	if err := failpoint.Eval(FPWALAppend); err != nil {
		w.appendErrs.Add(1)
		return fmt.Errorf("wal: append: %w", err)
	}
	var werr error
	if failpoint.Enabled(FPWALAppendShort) {
		if err := failpoint.Eval(FPWALAppendShort); err != nil {
			// Simulated torn write: part of the batch reaches the file
			// before the "device" fails, exactly like a crash or a full
			// disk mid-write. The repair below must erase it.
			w.f.Write(w.buf[:len(w.buf)/2])
			werr = fmt.Errorf("wal: append: %w", err)
		}
	}
	if werr == nil {
		if _, err := w.f.Write(w.buf); err != nil {
			werr = fmt.Errorf("wal: append: %w", err)
		}
	}
	if werr != nil {
		w.appendErrs.Add(1)
		if rerr := w.repairTail(); rerr != nil {
			werr = fmt.Errorf("%w (tail repair also failed, log disabled: %v)", werr, rerr)
		}
		return werr
	}
	serr := failpoint.Eval(FPWALSync)
	if serr == nil {
		serr = w.f.Sync()
	}
	if serr != nil {
		w.syncErrs.Add(1)
		// The batch is not acknowledged, so its bytes must not survive:
		// leaving them would make a restart replay writes the client was
		// told failed. (If the failed fsync means the truncate is not
		// durable either, the bytes were never going to survive a crash
		// anyway — the repair keeps the healthy-kernel case honest.)
		err := fmt.Errorf("wal: fsync: %w", serr)
		if rerr := w.repairTail(); rerr != nil {
			err = fmt.Errorf("%w (tail repair also failed, log disabled: %v)", err, rerr)
		}
		return err
	}
	w.off += int64(len(w.buf))
	w.records += len(ops)
	return nil
}

// repairTail truncates the file back to the durable offset after a
// failed append, restoring the invariant that the on-disk log ends at
// the last acknowledged record. If the repair itself fails the handle
// is dropped (fail stop): every later Append errors rather than
// appending after an undefined tail.
func (w *WAL) repairTail() error {
	if err := w.f.Truncate(w.off); err != nil {
		w.f.Close()
		w.f = nil
		return err
	}
	if _, err := w.f.Seek(w.off, io.SeekStart); err != nil {
		w.f.Close()
		w.f = nil
		return err
	}
	return nil
}

// Probe checks that the log can still reach stable storage (an fsync of
// the current file, through the same failpoint as Append's sync). The
// degraded-mode recovery loop calls this to decide when to re-enable
// writes.
func (w *WAL) Probe() error {
	if w.f == nil {
		return fmt.Errorf("wal: log handle lost (failed compaction reopen or closed)")
	}
	if err := failpoint.Eval(FPWALSync); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// CompactTo atomically replaces the log's contents with the given ops
// (those accepted after the snapshot the caller just persisted): a new
// log is written and fsynced beside the old one, then renamed over it.
// A crash at any point leaves either the old or the new log intact, and
// because replay is idempotent, either is correct against the snapshot.
//
// If the rename succeeds but the handle cannot be pointed at the new
// log, the WAL fails stop: the stale handle (now an unlinked inode) is
// dropped and every subsequent Append errors rather than acknowledging
// writes that would vanish with the process.
func (w *WAL) CompactTo(ops []dynhl.Op) error {
	if w.f == nil {
		return fmt.Errorf("wal: log handle lost (failed compaction reopen or closed)")
	}
	if err := failpoint.Eval(FPWALCompact); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	tmp := w.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	nw := &WAL{path: tmp, f: f, off: int64(len(walMagic))}
	if _, err := f.Write([]byte(walMagic)); err == nil {
		err = nw.AppendOps(ops)
	}
	if err == nil {
		err = f.Sync() // Append only syncs non-empty batches; the magic must hit disk too
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		// The old log is still in place and the handle still valid:
		// nothing changed, the caller may retry later.
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		w.dirSyncErrs.Add(1)
	}
	// The path now names the new log; the old handle points at an
	// unlinked inode and must not receive further appends.
	w.f.Close()
	w.f = nil
	nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen after compact: %w", err)
	}
	end, err := nf.Seek(0, io.SeekEnd)
	if err != nil {
		nf.Close()
		return fmt.Errorf("wal: reopen after compact: %w", err)
	}
	w.f = nf
	w.off = end
	w.records = len(ops)
	return nil
}

// Close syncs and closes the log file.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// syncDir fsyncs a directory so a just-renamed file is durable. Still
// best effort — some filesystems reject directory fsync and the rename
// itself is atomic — but the error is returned so callers can count
// the durability downgrade instead of losing it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
