package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"highway/internal/failpoint"
)

func tempWALPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "edges.wal")
}

func TestWALAppendRecoverRoundTrip(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Recovered()) != 0 || w.Len() != 0 {
		t.Fatalf("fresh log not empty: %d records", w.Len())
	}
	edges := [][2]int32{{1, 2}, {3, 4}, {5, 6}}
	if err := w.Append(edges[:2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(edges[2:]); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := w2.Recovered()
	if len(got) != len(edges) {
		t.Fatalf("recovered %d records, want %d", len(got), len(edges))
	}
	for i, e := range edges {
		if got[i] != e {
			t.Fatalf("record %d = %v, want %v", i, got[i], e)
		}
	}
	// Appends after recovery extend the log, not overwrite it.
	if err := w2.Append([][2]int32{{7, 8}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if w3.Len() != 4 || w3.Recovered()[3] != [2]int32{7, 8} {
		t.Fatalf("after append+reopen: %v", w3.Recovered())
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([][2]int32{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Simulate a crash mid-append: a partial third record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 2 {
		t.Fatalf("torn tail: recovered %d records, want 2", w2.Len())
	}
	// The torn bytes must be gone from disk, so the next append starts a
	// valid record.
	if err := w2.Append([][2]int32{{5, 6}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if w3.Len() != 3 || w3.Recovered()[2] != [2]int32{5, 6} {
		t.Fatalf("after torn-tail repair: %v", w3.Recovered())
	}
}

func TestWALCorruptRecordTruncatesSuffix(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([][2]int32{{1, 2}, {3, 4}, {5, 6}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Flip one byte in the middle record; it and everything after must
	// be dropped.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(walMagic)+walRecordSize+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 1 || w2.Recovered()[0] != [2]int32{1, 2} {
		t.Fatalf("corrupt middle record: recovered %v, want just {1,2}", w2.Recovered())
	}
}

func TestWALBadMagicRejected(t *testing.T) {
	path := tempWALPath(t)
	if err := os.WriteFile(path, []byte("NOTAWAL0: something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path); err == nil {
		t.Fatal("want error opening a non-WAL file")
	}
}

func TestWALCompactTo(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([][2]int32{{1, 2}, {3, 4}, {5, 6}, {7, 8}}); err != nil {
		t.Fatal(err)
	}
	delta := [][2]int32{{7, 8}}
	if err := w.CompactTo(delta); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Fatalf("Len after compact = %d, want 1", w.Len())
	}
	// The handle must keep working against the new file.
	if err := w.Append([][2]int32{{9, 10}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	want := [][2]int32{{7, 8}, {9, 10}}
	if len(w2.Recovered()) != len(want) {
		t.Fatalf("recovered %v, want %v", w2.Recovered(), want)
	}
	for i := range want {
		if w2.Recovered()[i] != want[i] {
			t.Fatalf("recovered %v, want %v", w2.Recovered(), want)
		}
	}
}

// TestWALTornTailEveryOffset crashes "mid-append" at every byte offset
// of the final record: whatever prefix of the record survives, recovery
// must keep exactly the preceding records, erase the torn bytes from
// disk, and leave the log appendable.
func TestWALTornTailEveryOffset(t *testing.T) {
	edges := [][2]int32{{1, 2}, {3, 4}, {5, 6}}
	full := int64(len(walMagic) + len(edges)*walRecordSize)
	for cut := 0; cut < walRecordSize; cut++ {
		path := tempWALPath(t)
		w, err := OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(edges); err != nil {
			t.Fatal(err)
		}
		w.Close()
		if err := os.Truncate(path, full-int64(walRecordSize)+int64(cut)); err != nil {
			t.Fatal(err)
		}

		w2, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if w2.Len() != len(edges)-1 {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, w2.Len(), len(edges)-1)
		}
		for i, e := range edges[:len(edges)-1] {
			if w2.Recovered()[i] != e {
				t.Fatalf("cut %d: record %d = %v, want %v", cut, i, w2.Recovered()[i], e)
			}
		}
		if st, err := os.Stat(path); err != nil || st.Size() != full-int64(walRecordSize) {
			t.Fatalf("cut %d: torn bytes not erased (size %d, err %v)", cut, st.Size(), err)
		}
		if err := w2.Append([][2]int32{{7, 8}}); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		w2.Close()
		w3, err := OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if w3.Len() != len(edges) || w3.Recovered()[len(edges)-1] != [2]int32{7, 8} {
			t.Fatalf("cut %d: after repair+append: %v", cut, w3.Recovered())
		}
		w3.Close()
	}
}

// TestWALAppendShortWriteRepairsTail reproduces a torn batch write with
// the wal.append.short failpoint: part of the batch reaches the file,
// the append fails, and the tail repair must erase the partial bytes so
// the on-disk log still ends at the last acknowledged record.
func TestWALAppendShortWriteRepairsTail(t *testing.T) {
	defer failpoint.Reset()
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([][2]int32{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Set(FPWALAppendShort, "error(disk full)"); err != nil {
		t.Fatal(err)
	}
	err = w.Append([][2]int32{{3, 4}, {5, 6}})
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected append failure, got %v", err)
	}
	if w.Len() != 1 {
		t.Fatalf("Len after failed append = %d, want 1", w.Len())
	}
	want := int64(len(walMagic) + walRecordSize)
	if st, serr := os.Stat(path); serr != nil || st.Size() != want {
		t.Fatalf("partial bytes not erased: size %d, want %d (err %v)", st.Size(), want, serr)
	}
	if got := w.Stats().AppendErrors; got != 1 {
		t.Fatalf("AppendErrors = %d, want 1", got)
	}
	// Disarmed, the log keeps working and replays exactly the
	// acknowledged records.
	failpoint.Clear(FPWALAppendShort)
	if err := w.Append([][2]int32{{7, 8}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	wantRec := [][2]int32{{1, 2}, {7, 8}}
	if len(w2.Recovered()) != len(wantRec) {
		t.Fatalf("recovered %v, want %v", w2.Recovered(), wantRec)
	}
	for i, e := range wantRec {
		if w2.Recovered()[i] != e {
			t.Fatalf("recovered %v, want %v", w2.Recovered(), wantRec)
		}
	}
}

// TestWALSyncFailureUnpersistsBatch pins the fsync-failure contract: the
// rejected batch's bytes must not survive on disk (a restart would
// replay writes the client was told failed), and Probe must track the
// failpoint's state.
func TestWALSyncFailureUnpersistsBatch(t *testing.T) {
	defer failpoint.Reset()
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([][2]int32{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Set(FPWALSync, "error(io error)"); err != nil {
		t.Fatal(err)
	}
	err = w.Append([][2]int32{{3, 4}})
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected fsync failure, got %v", err)
	}
	want := int64(len(walMagic) + walRecordSize)
	if st, serr := os.Stat(path); serr != nil || st.Size() != want {
		t.Fatalf("unacknowledged batch survived: size %d, want %d (err %v)", st.Size(), want, serr)
	}
	if got := w.Stats().SyncErrors; got != 1 {
		t.Fatalf("SyncErrors = %d, want 1", got)
	}
	if err := w.Probe(); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Probe under armed wal.sync: %v", err)
	}
	failpoint.Clear(FPWALSync)
	if err := w.Probe(); err != nil {
		t.Fatalf("Probe after disarm: %v", err)
	}
	if err := w.Append([][2]int32{{5, 6}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	wantRec := [][2]int32{{1, 2}, {5, 6}}
	for i, e := range wantRec {
		if w2.Recovered()[i] != e {
			t.Fatalf("recovered %v, want %v", w2.Recovered(), wantRec)
		}
	}
}
