package serve

import (
	"os"
	"path/filepath"
	"testing"
)

func tempWALPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "edges.wal")
}

func TestWALAppendRecoverRoundTrip(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Recovered()) != 0 || w.Len() != 0 {
		t.Fatalf("fresh log not empty: %d records", w.Len())
	}
	edges := [][2]int32{{1, 2}, {3, 4}, {5, 6}}
	if err := w.Append(edges[:2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(edges[2:]); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := w2.Recovered()
	if len(got) != len(edges) {
		t.Fatalf("recovered %d records, want %d", len(got), len(edges))
	}
	for i, e := range edges {
		if got[i] != e {
			t.Fatalf("record %d = %v, want %v", i, got[i], e)
		}
	}
	// Appends after recovery extend the log, not overwrite it.
	if err := w2.Append([][2]int32{{7, 8}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if w3.Len() != 4 || w3.Recovered()[3] != [2]int32{7, 8} {
		t.Fatalf("after append+reopen: %v", w3.Recovered())
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([][2]int32{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Simulate a crash mid-append: a partial third record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 2 {
		t.Fatalf("torn tail: recovered %d records, want 2", w2.Len())
	}
	// The torn bytes must be gone from disk, so the next append starts a
	// valid record.
	if err := w2.Append([][2]int32{{5, 6}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if w3.Len() != 3 || w3.Recovered()[2] != [2]int32{5, 6} {
		t.Fatalf("after torn-tail repair: %v", w3.Recovered())
	}
}

func TestWALCorruptRecordTruncatesSuffix(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([][2]int32{{1, 2}, {3, 4}, {5, 6}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Flip one byte in the middle record; it and everything after must
	// be dropped.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(walMagic)+walRecordSize+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 1 || w2.Recovered()[0] != [2]int32{1, 2} {
		t.Fatalf("corrupt middle record: recovered %v, want just {1,2}", w2.Recovered())
	}
}

func TestWALBadMagicRejected(t *testing.T) {
	path := tempWALPath(t)
	if err := os.WriteFile(path, []byte("NOTAWAL0: something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path); err == nil {
		t.Fatal("want error opening a non-WAL file")
	}
}

func TestWALCompactTo(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([][2]int32{{1, 2}, {3, 4}, {5, 6}, {7, 8}}); err != nil {
		t.Fatal(err)
	}
	delta := [][2]int32{{7, 8}}
	if err := w.CompactTo(delta); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Fatalf("Len after compact = %d, want 1", w.Len())
	}
	// The handle must keep working against the new file.
	if err := w.Append([][2]int32{{9, 10}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	want := [][2]int32{{7, 8}, {9, 10}}
	if len(w2.Recovered()) != len(want) {
		t.Fatalf("recovered %v, want %v", w2.Recovered(), want)
	}
	for i := range want {
		if w2.Recovered()[i] != want[i] {
			t.Fatalf("recovered %v, want %v", w2.Recovered(), want)
		}
	}
}
