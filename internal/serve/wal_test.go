package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"highway/internal/dynhl"
	"highway/internal/failpoint"
)

func tempWALPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "edges.wal")
}

// opOf is shorthand for the insert op an edge pair logs as.
func opOf(e [2]int32) dynhl.Op { return dynhl.Op{A: e[0], B: e[1]} }

func TestWALAppendRecoverRoundTrip(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Recovered()) != 0 || w.Len() != 0 {
		t.Fatalf("fresh log not empty: %d records", w.Len())
	}
	edges := [][2]int32{{1, 2}, {3, 4}, {5, 6}}
	if err := w.Append(edges[:2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(edges[2:]); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := w2.Recovered()
	if len(got) != len(edges) {
		t.Fatalf("recovered %d records, want %d", len(got), len(edges))
	}
	for i, e := range edges {
		if got[i] != opOf(e) {
			t.Fatalf("record %d = %v, want %v", i, got[i], e)
		}
	}
	// Appends after recovery extend the log, not overwrite it.
	if err := w2.Append([][2]int32{{7, 8}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if w3.Len() != 4 || w3.Recovered()[3] != opOf([2]int32{7, 8}) {
		t.Fatalf("after append+reopen: %v", w3.Recovered())
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([][2]int32{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Simulate a crash mid-append: a partial third record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 2 {
		t.Fatalf("torn tail: recovered %d records, want 2", w2.Len())
	}
	// The torn bytes must be gone from disk, so the next append starts a
	// valid record.
	if err := w2.Append([][2]int32{{5, 6}}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if w3.Len() != 3 || w3.Recovered()[2] != opOf([2]int32{5, 6}) {
		t.Fatalf("after torn-tail repair: %v", w3.Recovered())
	}
}

func TestWALCorruptRecordTruncatesSuffix(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([][2]int32{{1, 2}, {3, 4}, {5, 6}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Flip one byte in the middle record; it and everything after must
	// be dropped.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(walMagic)+walRecordSize+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 1 || w2.Recovered()[0] != opOf([2]int32{1, 2}) {
		t.Fatalf("corrupt middle record: recovered %v, want just {1,2}", w2.Recovered())
	}
}

func TestWALBadMagicRejected(t *testing.T) {
	path := tempWALPath(t)
	if err := os.WriteFile(path, []byte("NOTAWAL0: something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path); err == nil {
		t.Fatal("want error opening a non-WAL file")
	}
}

func TestWALCompactTo(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([][2]int32{{1, 2}, {3, 4}, {5, 6}, {7, 8}}); err != nil {
		t.Fatal(err)
	}
	delta := dynhl.InsertOps([][2]int32{{7, 8}})
	if err := w.CompactTo(delta); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Fatalf("Len after compact = %d, want 1", w.Len())
	}
	// The handle must keep working against the new file.
	if err := w.Append([][2]int32{{9, 10}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	want := [][2]int32{{7, 8}, {9, 10}}
	if len(w2.Recovered()) != len(want) {
		t.Fatalf("recovered %v, want %v", w2.Recovered(), want)
	}
	for i := range want {
		if w2.Recovered()[i] != opOf(want[i]) {
			t.Fatalf("recovered %v, want %v", w2.Recovered(), want)
		}
	}
}

// TestWALTornTailEveryOffset crashes "mid-append" at every byte offset
// of the final record: whatever prefix of the record survives, recovery
// must keep exactly the preceding records, erase the torn bytes from
// disk, and leave the log appendable.
func TestWALTornTailEveryOffset(t *testing.T) {
	edges := [][2]int32{{1, 2}, {3, 4}, {5, 6}}
	full := int64(len(walMagic) + len(edges)*walRecordSize)
	for cut := 0; cut < walRecordSize; cut++ {
		path := tempWALPath(t)
		w, err := OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(edges); err != nil {
			t.Fatal(err)
		}
		w.Close()
		if err := os.Truncate(path, full-int64(walRecordSize)+int64(cut)); err != nil {
			t.Fatal(err)
		}

		w2, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if w2.Len() != len(edges)-1 {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, w2.Len(), len(edges)-1)
		}
		for i, e := range edges[:len(edges)-1] {
			if w2.Recovered()[i] != opOf(e) {
				t.Fatalf("cut %d: record %d = %v, want %v", cut, i, w2.Recovered()[i], e)
			}
		}
		if st, err := os.Stat(path); err != nil || st.Size() != full-int64(walRecordSize) {
			t.Fatalf("cut %d: torn bytes not erased (size %d, err %v)", cut, st.Size(), err)
		}
		if err := w2.Append([][2]int32{{7, 8}}); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		w2.Close()
		w3, err := OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if w3.Len() != len(edges) || w3.Recovered()[len(edges)-1] != opOf([2]int32{7, 8}) {
			t.Fatalf("cut %d: after repair+append: %v", cut, w3.Recovered())
		}
		w3.Close()
	}
}

// TestWALAppendShortWriteRepairsTail reproduces a torn batch write with
// the wal.append.short failpoint: part of the batch reaches the file,
// the append fails, and the tail repair must erase the partial bytes so
// the on-disk log still ends at the last acknowledged record.
func TestWALAppendShortWriteRepairsTail(t *testing.T) {
	defer failpoint.Reset()
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([][2]int32{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Set(FPWALAppendShort, "error(disk full)"); err != nil {
		t.Fatal(err)
	}
	err = w.Append([][2]int32{{3, 4}, {5, 6}})
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected append failure, got %v", err)
	}
	if w.Len() != 1 {
		t.Fatalf("Len after failed append = %d, want 1", w.Len())
	}
	want := int64(len(walMagic) + walRecordSize)
	if st, serr := os.Stat(path); serr != nil || st.Size() != want {
		t.Fatalf("partial bytes not erased: size %d, want %d (err %v)", st.Size(), want, serr)
	}
	if got := w.Stats().AppendErrors; got != 1 {
		t.Fatalf("AppendErrors = %d, want 1", got)
	}
	// Disarmed, the log keeps working and replays exactly the
	// acknowledged records.
	failpoint.Clear(FPWALAppendShort)
	if err := w.Append([][2]int32{{7, 8}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	wantRec := [][2]int32{{1, 2}, {7, 8}}
	if len(w2.Recovered()) != len(wantRec) {
		t.Fatalf("recovered %v, want %v", w2.Recovered(), wantRec)
	}
	for i, e := range wantRec {
		if w2.Recovered()[i] != opOf(e) {
			t.Fatalf("recovered %v, want %v", w2.Recovered(), wantRec)
		}
	}
}

// TestWALSyncFailureUnpersistsBatch pins the fsync-failure contract: the
// rejected batch's bytes must not survive on disk (a restart would
// replay writes the client was told failed), and Probe must track the
// failpoint's state.
func TestWALSyncFailureUnpersistsBatch(t *testing.T) {
	defer failpoint.Reset()
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([][2]int32{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Set(FPWALSync, "error(io error)"); err != nil {
		t.Fatal(err)
	}
	err = w.Append([][2]int32{{3, 4}})
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected fsync failure, got %v", err)
	}
	want := int64(len(walMagic) + walRecordSize)
	if st, serr := os.Stat(path); serr != nil || st.Size() != want {
		t.Fatalf("unacknowledged batch survived: size %d, want %d (err %v)", st.Size(), want, serr)
	}
	if got := w.Stats().SyncErrors; got != 1 {
		t.Fatalf("SyncErrors = %d, want 1", got)
	}
	if err := w.Probe(); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Probe under armed wal.sync: %v", err)
	}
	failpoint.Clear(FPWALSync)
	if err := w.Probe(); err != nil {
		t.Fatalf("Probe after disarm: %v", err)
	}
	if err := w.Append([][2]int32{{5, 6}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	wantRec := [][2]int32{{1, 2}, {5, 6}}
	for i, e := range wantRec {
		if w2.Recovered()[i] != opOf(e) {
			t.Fatalf("recovered %v, want %v", w2.Recovered(), wantRec)
		}
	}
}

// TestWALMixedOpsRoundTrip pins the delete-record encoding: deletions
// are logged as one's-complement endpoint pairs in the same 12-byte
// record format, and a mixed log recovers the exact op sequence.
func TestWALMixedOpsRoundTrip(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	ops := []dynhl.Op{
		{A: 1, B: 2},
		{A: 1, B: 2, Del: true},
		{A: 0, B: 7},
		{A: 3, B: 0, Del: true}, // zero endpoint: ^0 = -1 must still decode
	}
	if err := w.AppendOps(ops); err != nil {
		t.Fatal(err)
	}
	if w.Len() != len(ops) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(ops))
	}
	w.Close()
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := w2.Recovered()
	if len(got) != len(ops) {
		t.Fatalf("recovered %d ops, want %d", len(got), len(ops))
	}
	for i, op := range ops {
		if got[i] != op {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], op)
		}
	}
}

// TestWALDeleteTornTailEveryOffset is the delete-record twin of
// TestWALTornTailEveryOffset: a crash at any byte offset inside a
// trailing delete record must truncate exactly that record.
func TestWALDeleteTornTailEveryOffset(t *testing.T) {
	ops := []dynhl.Op{{A: 1, B: 2}, {A: 3, B: 4, Del: true}, {A: 1, B: 2, Del: true}}
	full := int64(len(walMagic) + len(ops)*walRecordSize)
	for cut := 0; cut < walRecordSize; cut++ {
		path := tempWALPath(t)
		w, err := OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendOps(ops); err != nil {
			t.Fatal(err)
		}
		w.Close()
		if err := os.Truncate(path, full-int64(walRecordSize)+int64(cut)); err != nil {
			t.Fatal(err)
		}
		w2, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if w2.Len() != len(ops)-1 {
			t.Fatalf("cut %d: recovered %d ops, want %d", cut, w2.Len(), len(ops)-1)
		}
		for i, op := range ops[:len(ops)-1] {
			if w2.Recovered()[i] != op {
				t.Fatalf("cut %d: op %d = %+v, want %+v", cut, i, w2.Recovered()[i], op)
			}
		}
		if st, err := os.Stat(path); err != nil || st.Size() != full-int64(walRecordSize) {
			t.Fatalf("cut %d: torn bytes not erased (size %d, err %v)", cut, st.Size(), err)
		}
		w2.Close()
	}
}

// TestWALMixedSignRecordTruncates pins the corruption rule the
// complement encoding relies on: a record whose endpoints disagree in
// sign is not a valid insert or delete, so recovery must stop there.
func TestWALMixedSignRecordTruncates(t *testing.T) {
	path := tempWALPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendOps([]dynhl.Op{{A: 1, B: 2}, {A: 3, B: 4, Del: true}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Hand-craft a record {5, ^6}: valid CRC, invalid sign mix.
	var rec [walRecordSize]byte
	a, b := int32(5), ^int32(6)
	putInt32 := func(p []byte, v int32) {
		p[0], p[1], p[2], p[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	putInt32(rec[0:], a)
	putInt32(rec[4:], b)
	sum := walSum(a, b)
	rec[8], rec[9], rec[10], rec[11] = byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 2 {
		t.Fatalf("mixed-sign record survived: recovered %d ops, want 2", w2.Len())
	}
	if w2.Recovered()[1] != (dynhl.Op{A: 3, B: 4, Del: true}) {
		t.Fatalf("recovered %+v", w2.Recovered())
	}
}
