// Package wire is the binary serving protocol: the length-prefixed,
// checksummed frame format spoken between highway.Client and a Server's
// binary listener. It exists because a single label query costs ~1µs
// while an HTTP/1 + JSON round trip costs three orders of magnitude
// more — the full specification, including the compatibility rules and
// worked byte layouts, is PROTOCOL.md at the repository root.
//
// The package is deliberately dependency-free (stdlib only) and sits
// below both internal/serve (the listener) and internal/hlclient (the
// native client) in the dependency graph, the same way internal/method
// sits below every labelling.
//
// # Protocol summary
//
// A connection opens with an 8-byte magic exchange ("HWLRPC01", client
// first, then server), mirroring the "HWLIDX02"/"HWLWAL01" file
// conventions. After that, both directions carry frames:
//
//	uint32  length   little-endian; len(payload)+1 (the type byte)
//	uint8   type     record type (see the T... constants)
//	[]byte  payload  length-1 bytes
//	uint32  crc      CRC-32C (Castagnoli) over type byte + payload
//
// Requests may be pipelined: a client can write any number of frames
// before reading; the server answers strictly in request order, one
// response frame per request frame. See PROTOCOL.md for record payloads,
// error codes and versioning rules.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic is the 8-byte connection preamble each side sends before any
// frame (client first). The trailing digit is the protocol version:
// incompatible revisions bump it, so a mismatched peer fails at the
// handshake instead of misparsing frames.
const Magic = "HWLRPC01"

// Type identifies a record. Requests have the high bit clear, responses
// have it set; a response's type is its request's type | 0x80, except
// TError which may answer any request.
type Type byte

// Request record types (client → server).
const (
	// TDistance asks for one exact distance: payload is s,t (two
	// little-endian int32, 8 bytes).
	TDistance Type = 0x01
	// TBatch asks for many distances in one frame: payload is a
	// uint32 pair count followed by count (s,t) int32 pairs.
	TBatch Type = 0x02
	// TInsert inserts undirected edges (live servers only): payload is
	// a uint32 edge count followed by count (a,b) int32 pairs.
	TInsert Type = 0x03
	// TStats asks for the server's stats document: empty payload.
	TStats Type = 0x04
	// TPing is a liveness probe: empty payload.
	TPing Type = 0x05
	// TDelete deletes undirected edges (live servers only): payload is
	// a uint32 edge count followed by count (a,b) int32 pairs — the
	// same shape as TInsert. Absent edges are acked no-ops.
	TDelete Type = 0x06
	// TReplAppend ships one acked WAL batch from a primary to a
	// follower: payload is a uint64 epoch followed by a counted pair
	// array in WAL record encoding (deletes are one's-complement pairs,
	// both components negative — see PROTOCOL.md "Replication").
	TReplAppend Type = 0x07
	// TReplSnapshot streams one chunk of a `.snap` snapshot file to a
	// bootstrapping follower: payload is a uint64 epoch, a uint8 done
	// flag (1 on the final chunk) and the raw chunk bytes.
	TReplSnapshot Type = 0x08
)

// Response record types (server → client).
const (
	// TDistanceResp answers TDistance: payload is one int32 distance
	// (-1 = disconnected).
	TDistanceResp Type = 0x81
	// TBatchResp answers TBatch: payload is a uint32 count followed by
	// count int32 distances, in request order.
	TBatchResp Type = 0x82
	// TInsertResp answers TInsert: payload is uint32 accepted, uint32
	// inserted, uint64 epoch (all little-endian).
	TInsertResp Type = 0x83
	// TStatsResp answers TStats: payload is the UTF-8 JSON stats
	// document, byte-identical in shape to GET /stats.
	TStatsResp Type = 0x84
	// TPingResp answers TPing: empty payload.
	TPingResp Type = 0x85
	// TDeleteResp answers TDelete: payload is uint32 accepted, uint32
	// deleted, uint64 epoch (all little-endian).
	TDeleteResp Type = 0x86
	// TReplAck answers TReplAppend: payload is the follower's durable
	// uint64 epoch after applying the batch.
	TReplAck Type = 0x87
	// TReplSnapshotResp answers TReplSnapshot: payload is the
	// follower's uint64 epoch (the snapshot's epoch once done=1 has
	// been accepted and installed).
	TReplSnapshotResp Type = 0x88
	// TError answers any request that failed: payload is a uint16
	// error code followed by a UTF-8 message.
	TError Type = 0xFF
)

// TypeNames maps every record type this protocol version emits to its
// PROTOCOL.md name. The docs test at the repository root checks the
// table in PROTOCOL.md against this map, so the spec cannot drift from
// the implementation.
var TypeNames = map[Type]string{
	TDistance:         "Distance",
	TBatch:            "Batch",
	TInsert:           "Insert",
	TStats:            "Stats",
	TPing:             "Ping",
	TDelete:           "Delete",
	TReplAppend:       "ReplAppend",
	TReplSnapshot:     "ReplSnapshot",
	TDistanceResp:     "DistanceResp",
	TBatchResp:        "BatchResp",
	TInsertResp:       "InsertResp",
	TStatsResp:        "StatsResp",
	TPingResp:         "PingResp",
	TDeleteResp:       "DeleteResp",
	TReplAck:          "ReplAck",
	TReplSnapshotResp: "ReplSnapshotResp",
	TError:            "Error",
}

func (t Type) String() string {
	if n, ok := TypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("Type(0x%02x)", byte(t))
}

// ErrorCode classifies a TError response, so clients can map failures
// to the right behavior (retry, fix the request, give up) without
// parsing messages.
type ErrorCode uint16

const (
	// CodeMalformed: the request frame decoded but its payload did not
	// (wrong length, truncated array, unknown record type).
	CodeMalformed ErrorCode = 1
	// CodeRange: a vertex id is outside the served graph.
	CodeRange ErrorCode = 2
	// CodeTooLarge: the batch exceeds the server's configured limit.
	CodeTooLarge ErrorCode = 3
	// CodeReadOnly: an Insert was sent to a read-only server.
	CodeReadOnly ErrorCode = 4
	// CodeClosed: the server's writer side is shut down.
	CodeClosed ErrorCode = 5
	// CodeInternal: a server-side failure (WAL append, freeze); the
	// batch was NOT applied.
	CodeInternal ErrorCode = 6
	// CodeOverloaded: the server shed the request at admission (its
	// in-flight budget is full). Nothing was executed; retrying after a
	// short backoff is always safe.
	CodeOverloaded ErrorCode = 7
	// CodeDegraded: the server is in degraded read-only mode (its WAL is
	// unwritable); the insert was rejected and NOT applied. Reads still
	// work; writes may be retried after the server recovers.
	CodeDegraded ErrorCode = 8
	// CodeFenced: a replication frame carried an epoch at or below the
	// follower's durable epoch — the sender is deposed or replaying
	// already-applied history. The frame was NOT applied.
	CodeFenced ErrorCode = 9
	// CodeUnavailable: a router has no healthy upstream for the
	// request (all members down or circuit-open). Nothing was
	// executed; retrying after a backoff may succeed.
	CodeUnavailable ErrorCode = 10
)

// ErrorCodeNames mirrors TypeNames for error codes; checked against
// PROTOCOL.md by the same docs test.
var ErrorCodeNames = map[ErrorCode]string{
	CodeMalformed:   "Malformed",
	CodeRange:       "Range",
	CodeTooLarge:    "TooLarge",
	CodeReadOnly:    "ReadOnly",
	CodeClosed:      "Closed",
	CodeInternal:    "Internal",
	CodeOverloaded:  "Overloaded",
	CodeDegraded:    "Degraded",
	CodeFenced:      "Fenced",
	CodeUnavailable: "Unavailable",
}

func (c ErrorCode) String() string {
	if n, ok := ErrorCodeNames[c]; ok {
		return n
	}
	return fmt.Sprintf("ErrorCode(%d)", uint16(c))
}

// MaxFrame is the absolute frame-length cap both sides enforce: 16 MiB
// comfortably holds the largest legal batch (DefaultMaxBatch pairs is
// under 1 MiB) while bounding what a corrupt or hostile length prefix
// can make a reader allocate.
const MaxFrame = 1 << 24

// frame header/trailer sizes.
const (
	lenSize = 4 // uint32 length prefix
	crcSize = 4 // uint32 CRC-32C trailer
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadMagic is returned by ReadMagic when the peer is not speaking
// this protocol (or speaks an incompatible version).
var ErrBadMagic = errors.New("wire: bad protocol magic")

// ErrFrameTooLarge is returned by Reader.ReadFrame when a length prefix
// exceeds the reader's limit. The connection is unrecoverable after it:
// framing is lost.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrChecksum is returned by Reader.ReadFrame when a frame's CRC-32C
// does not match its contents. The connection is unrecoverable after
// it.
var ErrChecksum = errors.New("wire: frame checksum mismatch")

// WriteMagic sends the protocol preamble.
func WriteMagic(w io.Writer) error {
	_, err := w.Write([]byte(Magic))
	return err
}

// ReadMagic consumes and verifies the peer's preamble.
func ReadMagic(r io.Reader) error {
	var m [len(Magic)]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return fmt.Errorf("wire: reading magic: %w", err)
	}
	if string(m[:]) != Magic {
		return fmt.Errorf("%w: got %q, want %q", ErrBadMagic, m[:], Magic)
	}
	return nil
}

// Writer frames records onto a stream. Not safe for concurrent use.
type Writer struct {
	bw      *bufio.Writer
	scratch []byte
}

// NewWriter returns a Writer over w. Frames are buffered; call Flush
// when the caller has no further frames to pipeline.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// WriteFrame appends one framed record. The payload is not retained.
func (w *Writer) WriteFrame(t Type, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [lenSize + 1]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	crc := crc32.Update(crc32.Checksum([]byte{byte(t)}, crcTable), crcTable, payload)
	var tail [crcSize]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	_, err := w.bw.Write(tail[:])
	return err
}

// Flush pushes buffered frames to the underlying stream.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader decodes framed records from a stream. Not safe for concurrent
// use.
type Reader struct {
	br  *bufio.Reader
	max int
	buf []byte
}

// NewReader returns a Reader over r enforcing maxFrame (MaxFrame when
// maxFrame <= 0 or larger than MaxFrame).
func NewReader(r io.Reader, maxFrame int) *Reader {
	if maxFrame <= 0 || maxFrame > MaxFrame {
		maxFrame = MaxFrame
	}
	return &Reader{br: bufio.NewReaderSize(r, 1<<16), max: maxFrame}
}

// Buffered reports how many unread bytes are sitting in the reader's
// buffer. The server's pipelining flush heuristic is built on it: when
// a response has been written and Buffered() == 0, no further request
// is in flight on this connection, so the response buffer is flushed.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// ReadFrame reads one frame, verifies its checksum and returns its type
// and payload. The payload slice is reused by the next ReadFrame call.
// Oversized lengths are rejected before allocation: the body is read
// incrementally so a hostile 16 MiB length prefix on a 5-byte stream
// costs an error, not 16 MiB.
func (r *Reader) ReadFrame() (Type, []byte, error) {
	var hdr [lenSize]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("wire: frame length %d below minimum 1", n)
	}
	if int64(n) > int64(r.max) {
		return 0, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, r.max)
	}
	t, err := r.br.ReadByte()
	if err != nil {
		return 0, nil, eofIsUnexpected(err)
	}
	body := int(n) - 1
	if cap(r.buf) < body {
		// Grow toward the need, but never allocate more than the bytes
		// the stream actually produces: read in bounded steps.
		r.buf = make([]byte, 0, min(body, 1<<20))
	}
	r.buf = r.buf[:0]
	for len(r.buf) < body {
		step := min(body-len(r.buf), 1<<20)
		start := len(r.buf)
		r.buf = append(r.buf, make([]byte, step)...)
		if _, err := io.ReadFull(r.br, r.buf[start:]); err != nil {
			return 0, nil, eofIsUnexpected(err)
		}
	}
	var tail [crcSize]byte
	if _, err := io.ReadFull(r.br, tail[:]); err != nil {
		return 0, nil, eofIsUnexpected(err)
	}
	crc := crc32.Update(crc32.Checksum([]byte{t}, crcTable), crcTable, r.buf)
	if binary.LittleEndian.Uint32(tail[:]) != crc {
		return 0, nil, ErrChecksum
	}
	return Type(t), r.buf, nil
}

// eofIsUnexpected maps a mid-frame EOF to ErrUnexpectedEOF: only an EOF
// on a frame boundary is a clean close.
func eofIsUnexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Payload encoding helpers. All integers are little-endian; all append
// to dst and return the extended slice, so callers can reuse one scratch
// buffer across requests.

// AppendPair appends one (s,t) int32 pair (the TDistance payload).
func AppendPair(dst []byte, s, t int32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s))
	return binary.LittleEndian.AppendUint32(dst, uint32(t))
}

// DecodePair decodes a TDistance payload.
func DecodePair(p []byte) (s, t int32, err error) {
	if len(p) != 8 {
		return 0, 0, fmt.Errorf("wire: pair payload is %d bytes, want 8", len(p))
	}
	return int32(binary.LittleEndian.Uint32(p[0:4])), int32(binary.LittleEndian.Uint32(p[4:8])), nil
}

// AppendPairs appends a counted pair array (the TBatch/TInsert payload).
func AppendPairs(dst []byte, pairs [][2]int32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pairs)))
	for _, p := range pairs {
		dst = AppendPair(dst, p[0], p[1])
	}
	return dst
}

// DecodePairs decodes a counted pair array into dst (reused when large
// enough). The count must match the payload length exactly.
func DecodePairs(p []byte, dst [][2]int32) ([][2]int32, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("wire: pairs payload is %d bytes, want >= 4", len(p))
	}
	count := binary.LittleEndian.Uint32(p[0:4])
	body := p[4:]
	if int64(len(body)) != int64(count)*8 {
		return nil, fmt.Errorf("wire: pairs payload declares %d pairs but carries %d bytes", count, len(body))
	}
	if cap(dst) < int(count) {
		dst = make([][2]int32, count)
	}
	dst = dst[:count]
	for i := range dst {
		dst[i][0] = int32(binary.LittleEndian.Uint32(body[i*8:]))
		dst[i][1] = int32(binary.LittleEndian.Uint32(body[i*8+4:]))
	}
	return dst, nil
}

// AppendDistances appends a counted distance array (the TBatchResp
// payload).
func AppendDistances(dst []byte, ds []int32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ds)))
	for _, d := range ds {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
	}
	return dst
}

// DecodeDistances decodes a counted distance array into dst (reused
// when large enough).
func DecodeDistances(p []byte, dst []int32) ([]int32, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("wire: distances payload is %d bytes, want >= 4", len(p))
	}
	count := binary.LittleEndian.Uint32(p[0:4])
	body := p[4:]
	if int64(len(body)) != int64(count)*4 {
		return nil, fmt.Errorf("wire: distances payload declares %d entries but carries %d bytes", count, len(body))
	}
	if cap(dst) < int(count) {
		dst = make([]int32, count)
	}
	dst = dst[:count]
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(body[i*4:]))
	}
	return dst, nil
}

// AppendDistance appends one int32 distance (the TDistanceResp
// payload).
func AppendDistance(dst []byte, d int32) []byte {
	return binary.LittleEndian.AppendUint32(dst, uint32(d))
}

// DecodeDistance decodes a TDistanceResp payload.
func DecodeDistance(p []byte) (int32, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("wire: distance payload is %d bytes, want 4", len(p))
	}
	return int32(binary.LittleEndian.Uint32(p)), nil
}

// AppendInsertResult appends a TInsertResp payload.
func AppendInsertResult(dst []byte, accepted, inserted int, epoch uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(accepted))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(inserted))
	return binary.LittleEndian.AppendUint64(dst, epoch)
}

// DecodeInsertResult decodes a TInsertResp payload.
func DecodeInsertResult(p []byte) (accepted, inserted int, epoch uint64, err error) {
	if len(p) != 16 {
		return 0, 0, 0, fmt.Errorf("wire: insert result payload is %d bytes, want 16", len(p))
	}
	return int(binary.LittleEndian.Uint32(p[0:4])),
		int(binary.LittleEndian.Uint32(p[4:8])),
		binary.LittleEndian.Uint64(p[8:16]), nil
}

// AppendDeleteResult appends a TDeleteResp payload.
func AppendDeleteResult(dst []byte, accepted, deleted int, epoch uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(accepted))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(deleted))
	return binary.LittleEndian.AppendUint64(dst, epoch)
}

// DecodeDeleteResult decodes a TDeleteResp payload.
func DecodeDeleteResult(p []byte) (accepted, deleted int, epoch uint64, err error) {
	if len(p) != 16 {
		return 0, 0, 0, fmt.Errorf("wire: delete result payload is %d bytes, want 16", len(p))
	}
	return int(binary.LittleEndian.Uint32(p[0:4])),
		int(binary.LittleEndian.Uint32(p[4:8])),
		binary.LittleEndian.Uint64(p[8:16]), nil
}

// AppendReplAppend appends a TReplAppend payload: the primary's epoch
// for the batch followed by a counted pair array of WAL-encoded ops
// (deletes carry both components one's-complemented, i.e. negative).
func AppendReplAppend(dst []byte, epoch uint64, ops [][2]int32) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	return AppendPairs(dst, ops)
}

// DecodeReplAppend decodes a TReplAppend payload into dst (reused when
// large enough).
func DecodeReplAppend(p []byte, dst [][2]int32) (uint64, [][2]int32, error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("wire: repl append payload is %d bytes, want >= 8", len(p))
	}
	epoch := binary.LittleEndian.Uint64(p[0:8])
	ops, err := DecodePairs(p[8:], dst)
	if err != nil {
		return 0, nil, err
	}
	return epoch, ops, nil
}

// AppendReplAck appends a TReplAck or TReplSnapshotResp payload: the
// follower's durable epoch.
func AppendReplAck(dst []byte, epoch uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, epoch)
}

// DecodeReplAck decodes a TReplAck or TReplSnapshotResp payload.
func DecodeReplAck(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("wire: repl ack payload is %d bytes, want 8", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// AppendReplSnapshot appends a TReplSnapshot payload: the snapshot's
// epoch, a done flag (1 on the final chunk) and one chunk of the
// snapshot stream. Chunks must stay under MaxFrame; senders use a few
// MiB so one frame never monopolizes the connection.
func AppendReplSnapshot(dst []byte, epoch uint64, done bool, chunk []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	if done {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return append(dst, chunk...)
}

// DecodeReplSnapshot decodes a TReplSnapshot payload. The chunk slice
// aliases p and is only valid until the reader's next ReadFrame.
func DecodeReplSnapshot(p []byte) (epoch uint64, done bool, chunk []byte, err error) {
	if len(p) < 9 {
		return 0, false, nil, fmt.Errorf("wire: repl snapshot payload is %d bytes, want >= 9", len(p))
	}
	if p[8] > 1 {
		return 0, false, nil, fmt.Errorf("wire: repl snapshot done flag is %d, want 0 or 1", p[8])
	}
	return binary.LittleEndian.Uint64(p[0:8]), p[8] == 1, p[9:], nil
}

// AppendError appends a TError payload.
func AppendError(dst []byte, code ErrorCode, msg string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(code))
	return append(dst, msg...)
}

// DecodeError decodes a TError payload.
func DecodeError(p []byte) (ErrorCode, string, error) {
	if len(p) < 2 {
		return 0, "", fmt.Errorf("wire: error payload is %d bytes, want >= 2", len(p))
	}
	return ErrorCode(binary.LittleEndian.Uint16(p[0:2])), string(p[2:]), nil
}

// RemoteError is a TError response surfaced as a Go error by the
// client.
type RemoteError struct {
	Code    ErrorCode
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("server error %s: %s", e.Code, e.Message)
}
