package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestMagicRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMagic(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReadMagic(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := ReadMagic(strings.NewReader("HWLIDX02")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("foreign magic: err = %v, want ErrBadMagic", err)
	}
	if err := ReadMagic(strings.NewReader("HWL")); err == nil {
		t.Fatal("truncated magic: want error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	payloads := map[Type][]byte{
		TDistance: AppendPair(nil, 7, 1234567),
		TBatch:    AppendPairs(nil, [][2]int32{{0, 1}, {2, 3}, {-1, 1 << 30}}),
		TPing:     nil,
		TError:    AppendError(nil, CodeRange, "vertex 9 out of range"),
	}
	order := []Type{TDistance, TBatch, TPing, TError}
	for _, typ := range order {
		if err := w.WriteFrame(typ, payloads[typ]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()), 0)
	for _, want := range order {
		typ, p, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if typ != want {
			t.Fatalf("type = %v, want %v", typ, want)
		}
		if !bytes.Equal(p, payloads[want]) {
			t.Fatalf("%v payload = %x, want %x", want, p, payloads[want])
		}
	}
	if _, _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameChecksumAndTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(TDistance, AppendPair(nil, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one payload byte: the checksum must catch it.
	bad := append([]byte(nil), raw...)
	bad[6] ^= 0x40
	if _, _, err := NewReader(bytes.NewReader(bad), 0).ReadFrame(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt frame: err = %v, want ErrChecksum", err)
	}

	// Every possible truncation of a valid frame is a loud error (EOF
	// only on the empty prefix — a clean close between frames).
	for cut := 1; cut < len(raw); cut++ {
		_, _, err := NewReader(bytes.NewReader(raw[:cut]), 0).ReadFrame()
		if err == nil {
			t.Fatalf("truncated frame (%d/%d bytes) decoded", cut, len(raw))
		}
		if cut >= 5 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncated frame (%d/%d bytes): err = %v, want ErrUnexpectedEOF", cut, len(raw), err)
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	// A hostile length prefix must be rejected without allocating the
	// claimed size.
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<31)
	hdr[4] = byte(TDistance)
	if _, _, err := NewReader(bytes.NewReader(hdr[:]), 0).ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err = %v, want ErrFrameTooLarge", err)
	}
	// A reader-local limit below MaxFrame is enforced too.
	binary.LittleEndian.PutUint32(hdr[0:4], 1024)
	if _, _, err := NewReader(bytes.NewReader(hdr[:]), 64).ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("over local limit: err = %v, want ErrFrameTooLarge", err)
	}
	// Zero-length frames cannot exist: the type byte is part of the
	// length.
	binary.LittleEndian.PutUint32(hdr[0:4], 0)
	if _, _, err := NewReader(bytes.NewReader(hdr[:4]), 0).ReadFrame(); err == nil {
		t.Fatal("zero-length frame decoded")
	}
	// Writer refuses to emit what readers would reject.
	w := NewWriter(io.Discard)
	if err := w.WriteFrame(TBatch, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestPayloadCodecs(t *testing.T) {
	pairs := [][2]int32{{0, 0}, {5, 9}, {1 << 20, -1}}
	got, err := DecodePairs(AppendPairs(nil, pairs), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("decoded %d pairs, want %d", len(got), len(pairs))
	}
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], pairs[i])
		}
	}
	// Count/length mismatch is an error, not a guess.
	enc := AppendPairs(nil, pairs)
	if _, err := DecodePairs(enc[:len(enc)-1], nil); err == nil {
		t.Fatal("short pairs payload decoded")
	}
	binary.LittleEndian.PutUint32(enc[0:4], 99)
	if _, err := DecodePairs(enc, nil); err == nil {
		t.Fatal("overcounted pairs payload decoded")
	}

	ds := []int32{3, -1, 0, 1 << 30}
	dsGot, err := DecodeDistances(AppendDistances(nil, ds), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if dsGot[i] != ds[i] {
			t.Fatalf("distance %d = %d, want %d", i, dsGot[i], ds[i])
		}
	}

	s, tt, err := DecodePair(AppendPair(nil, 12, 34))
	if err != nil || s != 12 || tt != 34 {
		t.Fatalf("DecodePair = (%d,%d,%v), want (12,34,nil)", s, tt, err)
	}
	d, err := DecodeDistance(AppendDistance(nil, -1))
	if err != nil || d != -1 {
		t.Fatalf("DecodeDistance = (%d,%v), want (-1,nil)", d, err)
	}
	a, ins, ep, err := DecodeInsertResult(AppendInsertResult(nil, 3, 2, 77))
	if err != nil || a != 3 || ins != 2 || ep != 77 {
		t.Fatalf("DecodeInsertResult = (%d,%d,%d,%v)", a, ins, ep, err)
	}
	code, msg, err := DecodeError(AppendError(nil, CodeTooLarge, "big"))
	if err != nil || code != CodeTooLarge || msg != "big" {
		t.Fatalf("DecodeError = (%v,%q,%v)", code, msg, err)
	}
	for _, p := range [][]byte{nil, {1}, {1, 2, 3}} {
		if _, err := DecodeDistance(p); err == nil {
			t.Fatalf("DecodeDistance(%x) decoded", p)
		}
	}
	if _, _, _, err := DecodeInsertResult([]byte{1, 2, 3}); err == nil {
		t.Fatal("short insert result decoded")
	}
	if _, _, err := DecodeError([]byte{1}); err == nil {
		t.Fatal("short error payload decoded")
	}
}

func TestDecodeReusesBuffers(t *testing.T) {
	pairs := make([][2]int32, 8)
	enc := AppendPairs(nil, [][2]int32{{1, 2}})
	got, err := DecodePairs(enc, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &pairs[0] {
		t.Fatal("DecodePairs allocated despite a large-enough dst")
	}
	ds := make([]int32, 8)
	dsEnc := AppendDistances(nil, []int32{4})
	dsGot, err := DecodeDistances(dsEnc, ds)
	if err != nil {
		t.Fatal(err)
	}
	if &dsGot[0] != &ds[0] {
		t.Fatal("DecodeDistances allocated despite a large-enough dst")
	}
}

func TestTypeAndCodeStrings(t *testing.T) {
	if TBatch.String() != "Batch" || TError.String() != "Error" {
		t.Fatalf("Type.String: %v %v", TBatch, TError)
	}
	if got := Type(0x77).String(); got != "Type(0x77)" {
		t.Fatalf("unknown type renders %q", got)
	}
	if CodeReadOnly.String() != "ReadOnly" {
		t.Fatalf("ErrorCode.String: %v", CodeReadOnly)
	}
	if got := ErrorCode(99).String(); got != "ErrorCode(99)" {
		t.Fatalf("unknown code renders %q", got)
	}
	re := &RemoteError{Code: CodeRange, Message: "vertex 12 out of range [0,6)"}
	if !strings.Contains(re.Error(), "Range") || !strings.Contains(re.Error(), "vertex 12") {
		t.Fatalf("RemoteError renders %q", re.Error())
	}
}

// FuzzReadFrame holds the frame decoder total on arbitrary bytes: no
// panic, no allocation driven by a hostile length prefix, and anything
// it accepts must re-encode to the same frame (decode∘encode identity
// on the accepted set). CI runs this target in the fuzz job.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	w := NewWriter(&seed)
	_ = w.WriteFrame(TDistance, AppendPair(nil, 1, 2))
	_ = w.WriteFrame(TBatch, AppendPairs(nil, [][2]int32{{1, 2}, {3, 4}}))
	_ = w.WriteFrame(TError, AppendError(nil, CodeMalformed, "x"))
	_ = w.Flush()
	f.Add(seed.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 1, 0xde, 0xad, 0xbe, 0xef})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data), 0)
		for {
			typ, payload, err := r.ReadFrame()
			if err != nil {
				return
			}
			// Accepted frames must round-trip byte-identically.
			var buf bytes.Buffer
			w := NewWriter(&buf)
			if err := w.WriteFrame(typ, payload); err != nil {
				t.Fatalf("re-encoding accepted frame: %v", err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			typ2, p2, err := NewReader(bytes.NewReader(buf.Bytes()), 0).ReadFrame()
			if err != nil || typ2 != typ || !bytes.Equal(p2, payload) {
				t.Fatalf("round trip diverged: (%v,%x,%v) vs (%v,%x)", typ2, p2, err, typ, payload)
			}
			// Payload decoders must be total on whatever the framing
			// layer accepts.
			switch typ {
			case TDistance:
				_, _, _ = DecodePair(payload)
			case TBatch, TInsert, TDelete:
				_, _ = DecodePairs(payload, nil)
			case TDistanceResp:
				_, _ = DecodeDistance(payload)
			case TBatchResp:
				_, _ = DecodeDistances(payload, nil)
			case TInsertResp:
				_, _, _, _ = DecodeInsertResult(payload)
			case TDeleteResp:
				_, _, _, _ = DecodeDeleteResult(payload)
			case TError:
				_, _, _ = DecodeError(payload)
			}
		}
	})
}

// FuzzDeleteFrame holds the deletion frame's payload codecs total on
// arbitrary bytes: DecodePairs (a Delete request reuses the Insert pair
// array) and DecodeDeleteResult must never panic, and any payload they
// accept must re-encode byte-identically. CI runs this target in the
// fuzz job next to FuzzReadFrame.
func FuzzDeleteFrame(f *testing.F) {
	f.Add(AppendPairs(nil, [][2]int32{{1, 2}, {3, 4}}))
	f.Add(AppendPairs(nil, nil))
	f.Add(AppendDeleteResult(nil, 2, 1, 7))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		if pairs, err := DecodePairs(data, nil); err == nil {
			if re := AppendPairs(nil, pairs); !bytes.Equal(re, data) {
				t.Fatalf("accepted Delete payload does not round-trip: %x -> %x", data, re)
			}
		}
		if acc, del, epoch, err := DecodeDeleteResult(data); err == nil {
			if re := AppendDeleteResult(nil, acc, del, epoch); !bytes.Equal(re, data) {
				t.Fatalf("accepted DeleteResp payload does not round-trip: %x -> %x", data, re)
			}
		}
	})
}

func TestReplCodecs(t *testing.T) {
	ops := [][2]int32{{1, 2}, {^int32(3), ^int32(4)}, {5, 5}}
	epoch, got, err := DecodeReplAppend(AppendReplAppend(nil, 42, ops), nil)
	if err != nil || epoch != 42 {
		t.Fatalf("DecodeReplAppend: epoch=%d err=%v", epoch, err)
	}
	if len(got) != len(ops) || got[1] != ops[1] {
		t.Fatalf("DecodeReplAppend pairs diverged: %v vs %v", got, ops)
	}
	if _, _, err := DecodeReplAppend([]byte{1, 2, 3}, nil); err == nil {
		t.Fatal("short repl append payload accepted")
	}

	if e, err := DecodeReplAck(AppendReplAck(nil, 7)); err != nil || e != 7 {
		t.Fatalf("DecodeReplAck: %d, %v", e, err)
	}
	if _, err := DecodeReplAck([]byte{1}); err == nil {
		t.Fatal("short repl ack payload accepted")
	}

	chunk := []byte("snapshot-bytes")
	e, done, c, err := DecodeReplSnapshot(AppendReplSnapshot(nil, 9, true, chunk))
	if err != nil || e != 9 || !done || string(c) != string(chunk) {
		t.Fatalf("DecodeReplSnapshot: epoch=%d done=%v chunk=%q err=%v", e, done, c, err)
	}
	e, done, c, err = DecodeReplSnapshot(AppendReplSnapshot(nil, 9, false, nil))
	if err != nil || e != 9 || done || len(c) != 0 {
		t.Fatalf("DecodeReplSnapshot empty chunk: epoch=%d done=%v chunk=%q err=%v", e, done, c, err)
	}
	if _, _, _, err := DecodeReplSnapshot([]byte{0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("8-byte repl snapshot payload accepted")
	}
	bad := AppendReplSnapshot(nil, 1, false, nil)
	bad[8] = 2
	if _, _, _, err := DecodeReplSnapshot(bad); err == nil {
		t.Fatal("done flag 2 accepted")
	}
}

// FuzzReplFrame holds the replication codecs total on arbitrary bytes:
// DecodeReplAppend, DecodeReplAck and DecodeReplSnapshot must never
// panic, and any payload they accept must re-encode byte-identically.
// CI runs this target in the fuzz job next to FuzzDeleteFrame.
func FuzzReplFrame(f *testing.F) {
	f.Add(AppendReplAppend(nil, 42, [][2]int32{{1, 2}, {^int32(3), ^int32(4)}}))
	f.Add(AppendReplAck(nil, 7))
	f.Add(AppendReplSnapshot(nil, 9, true, []byte("chunk")))
	f.Add(AppendReplSnapshot(nil, 9, false, nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		if epoch, ops, err := DecodeReplAppend(data, nil); err == nil {
			if re := AppendReplAppend(nil, epoch, ops); !bytes.Equal(re, data) {
				t.Fatalf("accepted ReplAppend payload does not round-trip: %x -> %x", data, re)
			}
		}
		if epoch, err := DecodeReplAck(data); err == nil {
			if re := AppendReplAck(nil, epoch); !bytes.Equal(re, data) {
				t.Fatalf("accepted ReplAck payload does not round-trip: %x -> %x", data, re)
			}
		}
		if epoch, done, chunk, err := DecodeReplSnapshot(data); err == nil {
			if re := AppendReplSnapshot(nil, epoch, done, chunk); !bytes.Equal(re, data) {
				t.Fatalf("accepted ReplSnapshot payload does not round-trip: %x -> %x", data, re)
			}
		}
	})
}
