package workload

import "math/rand"

// EdgeOp is one trace step of a churn workload: an undirected edge
// insertion or (Del) deletion.
type EdgeOp struct {
	A, B int32
	Del  bool
}

// opWindow caps the live-edge window an OpStream samples deletions
// from. Bounded so an insert-heavy stream does not grow without limit;
// large enough that deletions spread over edges inserted well in the
// past, not just the most recent handful.
const opWindow = 4096

// OpStream is an endless deterministic source of mixed edge mutations:
// the churn-side counterpart of Stream. Insertions draw endpoints
// uniformly — or Zipf-skewed toward low vertex ids when skew > 1,
// matching the hub-heavy access patterns of scale-free workloads — and
// enter a bounded live-edge window; deletions draw from that window, so
// they overwhelmingly target edges that actually exist (trace-style
// churn) rather than being no-ops on random absent pairs. Not safe for
// concurrent use; give each producer its own, like Stream.
type OpStream struct {
	rng         *rand.Rand
	zipf        *rand.Zipf
	n           int32
	deleteRatio float64
	window      [][2]int32
}

// NewOpStream returns a churn stream over n vertices. deleteRatio is
// the fraction of ops that delete (clamped to [0,1]); skew > 1 draws
// insertion endpoints from a Zipf(skew) distribution over vertex ids,
// anything else is uniform. Deterministic for a given seed. Panics if
// n is zero, like NewStreamN.
func NewOpStream(n int, deleteRatio, skew float64, seed int64) *OpStream {
	if n == 0 {
		panic("workload: NewOpStream on empty graph")
	}
	if deleteRatio < 0 {
		deleteRatio = 0
	}
	if deleteRatio > 1 {
		deleteRatio = 1
	}
	rng := rand.New(rand.NewSource(seed))
	st := &OpStream{rng: rng, n: int32(n), deleteRatio: deleteRatio}
	if skew > 1 && n > 1 {
		st.zipf = rand.NewZipf(rng, skew, 1, uint64(n-1))
	}
	return st
}

func (st *OpStream) vertex() int32 {
	if st.zipf != nil {
		return int32(st.zipf.Uint64())
	}
	return st.rng.Int31n(st.n)
}

// Next returns the next op in the stream. A deletion with an empty
// window degrades to an insertion, so the stream always produces an op.
func (st *OpStream) Next() EdgeOp {
	if st.rng.Float64() < st.deleteRatio && len(st.window) > 0 {
		i := st.rng.Intn(len(st.window))
		e := st.window[i]
		last := len(st.window) - 1
		st.window[i] = st.window[last]
		st.window = st.window[:last]
		return EdgeOp{A: e[0], B: e[1], Del: true}
	}
	e := [2]int32{st.vertex(), st.vertex()}
	if len(st.window) == opWindow {
		// Evict a random victim: FIFO would make deletions trail the
		// insert frontier by a fixed lag, which is less trace-like than
		// an age-mixed window.
		st.window[st.rng.Intn(opWindow)] = e
	} else {
		st.window = append(st.window, e)
	}
	return EdgeOp{A: e[0], B: e[1]}
}
