package workload

import "testing"

func TestOpStreamDeterministicAndLive(t *testing.T) {
	a := NewOpStream(100, 0.4, 0, 9)
	b := NewOpStream(100, 0.4, 0, 9)
	// Multiset of inserted-not-yet-deleted window entries: the window
	// tracks insertions individually, so the same undirected edge can
	// appear twice and be deleted twice (the second delete is an acked
	// no-op downstream — allowed, just not the common case).
	live := map[[2]int32]int{}
	key := func(x, y int32) [2]int32 {
		if x > y {
			x, y = y, x
		}
		return [2]int32{x, y}
	}
	var dels int
	for i := 0; i < 5000; i++ {
		op := a.Next()
		if got := b.Next(); got != op {
			t.Fatalf("op %d: streams with equal seeds diverged: %v vs %v", i, op, got)
		}
		if op.A < 0 || op.A >= 100 || op.B < 0 || op.B >= 100 {
			t.Fatalf("op %d out of range: %v", i, op)
		}
		if op.Del {
			dels++
			// Deletions come from the live window: some insertion of
			// this edge must precede it. (The window is bounded, so
			// this holds only while insertions fit in it — 5000 ops at
			// 40% deletions stay under the window cap.)
			if live[key(op.A, op.B)] == 0 {
				t.Fatalf("op %d deletes an edge never inserted: %v", i, op)
			}
			live[key(op.A, op.B)]--
		} else {
			live[key(op.A, op.B)]++
		}
	}
	// 40% of 5000 ± noise; a collapsed ratio means the window starved.
	if dels < 1700 || dels > 2300 {
		t.Fatalf("%d deletions out of 5000 ops at ratio 0.4", dels)
	}
}

func TestOpStreamSkew(t *testing.T) {
	st := NewOpStream(1000, 0, 2.5, 3)
	low := 0
	for i := 0; i < 2000; i++ {
		op := st.Next()
		if op.A < 10 {
			low++
		}
		if op.Del {
			t.Fatalf("op %d: deletion at ratio 0", i)
		}
	}
	// Zipf(2.5) concentrates mass on the smallest ids; uniform would put
	// ~1% of endpoints below 10. Anything over 30% proves the skew took.
	if low < 600 {
		t.Fatalf("only %d/2000 skewed endpoints below vertex 10", low)
	}
}

func TestOpStreamClamps(t *testing.T) {
	st := NewOpStream(10, 5, 0, 1) // ratio clamps to 1; first op still inserts (empty window)
	if op := st.Next(); op.Del {
		t.Fatalf("first op on an empty window deleted: %v", op)
	}
	if op := st.Next(); !op.Del {
		t.Fatalf("ratio-1 stream inserted with a non-empty window: %v", op)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewOpStream(0, ...) did not panic")
		}
	}()
	NewOpStream(0, 0, 0, 1)
}
