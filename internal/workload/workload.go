// Package workload produces the query workloads and measurements of the
// paper's evaluation: seeded random vertex-pair samples (Section 6.1 uses
// 100,000 pairs drawn from V×V), exact-distance ground truth, the
// distance distributions of Figure 6, and the pair coverage ratio of
// Figure 9.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"highway/internal/graph"
)

// Pair is one (s,t) distance query.
type Pair struct {
	S, T int32
}

// Stream is an endless deterministic source of uniform random (s,t)
// pairs: the reusable request stream behind RandomPairs and the serving
// subsystem's load generator. A Stream is not safe for concurrent use;
// give each producer goroutine its own (seeds differing by goroutine id
// keep the union deterministic).
type Stream struct {
	rng *rand.Rand
	n   int
}

// NewStream returns a pair stream over g's vertex set. Deterministic for
// a given seed. Panics if g has no vertices.
func NewStream(g *graph.Graph, seed int64) *Stream {
	return NewStreamN(g.NumVertices(), seed)
}

// NewStreamN is NewStream over an explicit vertex count, for callers
// that serve an index behind the method-agnostic interface and have no
// graph at hand. Panics if n is zero.
func NewStreamN(n int, seed int64) *Stream {
	if n == 0 {
		panic("workload: NewStream on empty graph")
	}
	return &Stream{rng: rand.New(rand.NewSource(seed)), n: n}
}

// Next returns the next pair in the stream.
func (st *Stream) Next() Pair {
	return Pair{S: int32(st.rng.Intn(st.n)), T: int32(st.rng.Intn(st.n))}
}

// Fill overwrites dst with the next len(dst) pairs and returns dst.
func (st *Stream) Fill(dst []Pair) []Pair {
	for i := range dst {
		dst[i] = st.Next()
	}
	return dst
}

// RandomPairs samples count pairs uniformly from V×V (with replacement,
// like the paper). Deterministic for a given seed.
func RandomPairs(g *graph.Graph, count int, seed int64) []Pair {
	if g.NumVertices() == 0 {
		return nil
	}
	return NewStream(g, seed).Fill(make([]Pair, count))
}

// WritePairs emits count stream pairs as whitespace-separated "s t"
// lines: the text format consumed by hlserve's batch mode and hlquery's
// REPL. Use it to generate load-test inputs without materializing the
// workload in memory.
func WritePairs(w io.Writer, g *graph.Graph, count int, seed int64) error {
	if g.NumVertices() == 0 || count == 0 {
		return nil
	}
	st := NewStream(g, seed)
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 24)
	for i := 0; i < count; i++ {
		p := st.Next()
		buf = strconv.AppendInt(buf[:0], int64(p.S), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(p.T), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPairs parses whitespace-separated "s t" lines (the WritePairs
// format; blank lines and '#'/'%' comments allowed, matching
// LoadEdgeList's SNAP/KONECT conventions) and calls yield for each pair
// in order. It validates vertex ids against n and stops at the first
// malformed line.
func ReadPairs(r io.Reader, n int, yield func(Pair) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		var s, t int32
		if ok, err := parsePairLine(text, n, &s, &t); err != nil {
			return fmt.Errorf("workload: line %d: %w", line, err)
		} else if !ok {
			continue
		}
		if err := yield(Pair{S: s, T: t}); err != nil {
			return err
		}
	}
	return sc.Err()
}

// parsePairLine parses one "s t" line into (*s,*t). It reports ok=false
// for blank and comment lines, and an error for malformed or
// out-of-range input.
func parsePairLine(text string, n int, s, t *int32) (ok bool, err error) {
	i, l := 0, len(text)
	skip := func() {
		for i < l && (text[i] == ' ' || text[i] == '\t' || text[i] == '\r') {
			i++
		}
	}
	num := func() (int32, bool) {
		start := i
		var v int64
		for i < l && text[i] >= '0' && text[i] <= '9' {
			v = v*10 + int64(text[i]-'0')
			if v > int64(n) {
				return 0, false
			}
			i++
		}
		if i == start || v >= int64(n) {
			return 0, false
		}
		return int32(v), true
	}
	skip()
	if i == l || text[i] == '#' || text[i] == '%' {
		return false, nil
	}
	a, okA := num()
	skip()
	b, okB := num()
	skip()
	if !okA || !okB || i != l {
		return false, fmt.Errorf("want two vertex ids in [0,%d), got %q", n, text)
	}
	*s, *t = a, b
	return true, nil
}

// Oracle answers exact distance queries; -1 means unreachable. All index
// types in this repository satisfy it via their Searcher types.
type Oracle interface {
	Distance(s, t int32) int32
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(s, t int32) int32

// Distance implements Oracle.
func (f OracleFunc) Distance(s, t int32) int32 { return f(s, t) }

// Distribution is a histogram of pair distances (Figure 6): Counts[d] is
// the number of sampled pairs at distance d; Unreachable counts pairs with
// no path.
type Distribution struct {
	Counts      []int64
	Unreachable int64
	Total       int64
}

// DistanceDistribution evaluates the oracle on every pair and histograms
// the results.
func DistanceDistribution(o Oracle, pairs []Pair) Distribution {
	dist := Distribution{Total: int64(len(pairs))}
	for _, p := range pairs {
		d := o.Distance(p.S, p.T)
		if d < 0 {
			dist.Unreachable++
			continue
		}
		for int(d) >= len(dist.Counts) {
			dist.Counts = append(dist.Counts, 0)
		}
		dist.Counts[d]++
	}
	return dist
}

// Fraction returns the fraction of pairs at distance d (Figure 6's y
// axis).
func (d Distribution) Fraction(dist int) float64 {
	if d.Total == 0 || dist >= len(d.Counts) {
		return 0
	}
	return float64(d.Counts[dist]) / float64(d.Total)
}

// Mean returns the average distance over reachable pairs.
func (d Distribution) Mean() float64 {
	var sum, cnt int64
	for dist, c := range d.Counts {
		sum += int64(dist) * c
		cnt += c
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// String renders the histogram compactly.
func (d Distribution) String() string {
	s := ""
	for dist, c := range d.Counts {
		if c > 0 {
			s += fmt.Sprintf("d=%d:%.3f ", dist, float64(c)/float64(d.Total))
		}
	}
	if d.Unreachable > 0 {
		s += fmt.Sprintf("unreachable:%.3f", float64(d.Unreachable)/float64(d.Total))
	}
	return s
}

// Bounder reports label-derived upper bounds; the HL and FD indexes
// satisfy it.
type Bounder interface {
	UpperBound(s, t int32) int32
}

// PairCoverage returns the fraction of reachable sampled pairs whose upper
// bound equals the exact distance — i.e. pairs covered by at least one
// landmark (Figure 9). exact must answer exact distances (it may be the
// same index).
func PairCoverage(b Bounder, exact Oracle, pairs []Pair) float64 {
	var covered, reachable int64
	for _, p := range pairs {
		d := exact.Distance(p.S, p.T)
		if d < 0 {
			continue
		}
		reachable++
		if ub := b.UpperBound(p.S, p.T); ub == d {
			covered++
		}
	}
	if reachable == 0 {
		return 0
	}
	return float64(covered) / float64(reachable)
}
