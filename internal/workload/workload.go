// Package workload produces the query workloads and measurements of the
// paper's evaluation: seeded random vertex-pair samples (Section 6.1 uses
// 100,000 pairs drawn from V×V), exact-distance ground truth, the
// distance distributions of Figure 6, and the pair coverage ratio of
// Figure 9.
package workload

import (
	"fmt"
	"math/rand"

	"highway/internal/graph"
)

// Pair is one (s,t) distance query.
type Pair struct {
	S, T int32
}

// RandomPairs samples count pairs uniformly from V×V (with replacement,
// like the paper). Deterministic for a given seed.
func RandomPairs(g *graph.Graph, count int, seed int64) []Pair {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]Pair, count)
	for i := range pairs {
		pairs[i] = Pair{S: int32(rng.Intn(n)), T: int32(rng.Intn(n))}
	}
	return pairs
}

// Oracle answers exact distance queries; -1 means unreachable. All index
// types in this repository satisfy it via their Searcher types.
type Oracle interface {
	Distance(s, t int32) int32
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(s, t int32) int32

// Distance implements Oracle.
func (f OracleFunc) Distance(s, t int32) int32 { return f(s, t) }

// Distribution is a histogram of pair distances (Figure 6): Counts[d] is
// the number of sampled pairs at distance d; Unreachable counts pairs with
// no path.
type Distribution struct {
	Counts      []int64
	Unreachable int64
	Total       int64
}

// DistanceDistribution evaluates the oracle on every pair and histograms
// the results.
func DistanceDistribution(o Oracle, pairs []Pair) Distribution {
	dist := Distribution{Total: int64(len(pairs))}
	for _, p := range pairs {
		d := o.Distance(p.S, p.T)
		if d < 0 {
			dist.Unreachable++
			continue
		}
		for int(d) >= len(dist.Counts) {
			dist.Counts = append(dist.Counts, 0)
		}
		dist.Counts[d]++
	}
	return dist
}

// Fraction returns the fraction of pairs at distance d (Figure 6's y
// axis).
func (d Distribution) Fraction(dist int) float64 {
	if d.Total == 0 || dist >= len(d.Counts) {
		return 0
	}
	return float64(d.Counts[dist]) / float64(d.Total)
}

// Mean returns the average distance over reachable pairs.
func (d Distribution) Mean() float64 {
	var sum, cnt int64
	for dist, c := range d.Counts {
		sum += int64(dist) * c
		cnt += c
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// String renders the histogram compactly.
func (d Distribution) String() string {
	s := ""
	for dist, c := range d.Counts {
		if c > 0 {
			s += fmt.Sprintf("d=%d:%.3f ", dist, float64(c)/float64(d.Total))
		}
	}
	if d.Unreachable > 0 {
		s += fmt.Sprintf("unreachable:%.3f", float64(d.Unreachable)/float64(d.Total))
	}
	return s
}

// Bounder reports label-derived upper bounds; the HL and FD indexes
// satisfy it.
type Bounder interface {
	UpperBound(s, t int32) int32
}

// PairCoverage returns the fraction of reachable sampled pairs whose upper
// bound equals the exact distance — i.e. pairs covered by at least one
// landmark (Figure 9). exact must answer exact distances (it may be the
// same index).
func PairCoverage(b Bounder, exact Oracle, pairs []Pair) float64 {
	var covered, reachable int64
	for _, p := range pairs {
		d := exact.Distance(p.S, p.T)
		if d < 0 {
			continue
		}
		reachable++
		if ub := b.UpperBound(p.S, p.T); ub == d {
			covered++
		}
	}
	if reachable == 0 {
		return 0
	}
	return float64(covered) / float64(reachable)
}
