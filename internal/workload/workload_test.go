package workload

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"highway/internal/bfs"
	"highway/internal/core"
	"highway/internal/gen"
)

func TestRandomPairsDeterministic(t *testing.T) {
	g := gen.Cycle(100)
	a := RandomPairs(g, 50, 7)
	b := RandomPairs(g, 50, 7)
	if len(a) != 50 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different pairs")
		}
	}
	c := RandomPairs(g, 50, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds gave identical pairs")
	}
	if RandomPairs(gen.Path(0), 5, 1) != nil {
		t.Fatal("empty graph should yield nil pairs")
	}
}

func TestDistanceDistribution(t *testing.T) {
	g := gen.Path(4) // distances 0..3
	pairs := []Pair{{0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 3}}
	o := OracleFunc(func(s, u int32) int32 { return bfs.Dist(g, s, u) })
	d := DistanceDistribution(o, pairs)
	if d.Total != 5 || d.Unreachable != 0 {
		t.Fatalf("total=%d unreachable=%d", d.Total, d.Unreachable)
	}
	wantCounts := []int64{1, 1, 2, 1}
	for i, w := range wantCounts {
		if d.Counts[i] != w {
			t.Fatalf("Counts[%d] = %d, want %d", i, d.Counts[i], w)
		}
	}
	if d.Fraction(2) != 0.4 {
		t.Fatalf("Fraction(2) = %v", d.Fraction(2))
	}
	if d.Fraction(99) != 0 {
		t.Fatal("out-of-range fraction must be 0")
	}
	if got := d.Mean(); got != (0+1+2+2+3)/5.0 {
		t.Fatalf("Mean = %v", got)
	}
	if d.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestDistributionUnreachable(t *testing.T) {
	o := OracleFunc(func(s, u int32) int32 { return -1 })
	d := DistanceDistribution(o, []Pair{{0, 1}, {1, 2}})
	if d.Unreachable != 2 {
		t.Fatalf("unreachable = %d", d.Unreachable)
	}
	if d.Mean() != 0 {
		t.Fatal("mean over no reachable pairs must be 0")
	}
}

func TestPairCoverage(t *testing.T) {
	// Star graph, landmark = center: every pair's shortest path goes
	// through the center → coverage 1.0.
	g := gen.Star(20)
	ix, err := core.Build(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	pairs := RandomPairs(g, 200, 3)
	sr := ix.NewSearcher()
	cov := PairCoverage(ix, OracleFunc(sr.Distance), pairs)
	if cov != 1.0 {
		t.Fatalf("star coverage = %v, want 1.0", cov)
	}

	// Path graph with the landmark at one end: pairs strictly inside the
	// path are not covered.
	p := gen.Path(50)
	ixp, err := core.Build(p, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	srp := ixp.NewSearcher()
	covP := PairCoverage(ixp, OracleFunc(srp.Distance), []Pair{{10, 40}, {5, 45}, {0, 30}})
	// Only the pair touching the landmark (0,30) is covered.
	if covP <= 0.3 || covP >= 0.4 {
		t.Fatalf("path coverage = %v, want 1/3", covP)
	}
}

func TestPairCoverageAllUnreachable(t *testing.T) {
	o := OracleFunc(func(s, u int32) int32 { return -1 })
	b := bounderFunc(func(s, u int32) int32 { return -1 })
	if cov := PairCoverage(b, o, []Pair{{0, 1}}); cov != 0 {
		t.Fatalf("coverage = %v, want 0", cov)
	}
}

type bounderFunc func(s, t int32) int32

func (f bounderFunc) UpperBound(s, t int32) int32 { return f(s, t) }

func TestStreamMatchesRandomPairs(t *testing.T) {
	g := gen.Cycle(64)
	st := NewStream(g, 9)
	want := RandomPairs(g, 40, 9)
	for i, w := range want {
		if got := st.Next(); got != w {
			t.Fatalf("stream pair %d = %v, want %v", i, got, w)
		}
	}
	// Fill continues the same sequence as repeated Next.
	st2 := NewStream(g, 9)
	buf := st2.Fill(make([]Pair, 40))
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("Fill pair %d = %v, want %v", i, buf[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewStream on empty graph must panic")
		}
	}()
	NewStream(gen.Path(0), 1)
}

func TestWriteReadPairsRoundTrip(t *testing.T) {
	g := gen.Cycle(100)
	var buf bytes.Buffer
	if err := WritePairs(&buf, g, 500, 4); err != nil {
		t.Fatal(err)
	}
	want := RandomPairs(g, 500, 4)
	var got []Pair
	err := ReadPairs(strings.NewReader(buf.String()), g.NumVertices(), func(p Pair) error {
		got = append(got, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Zero count and empty graph are no-ops.
	if err := WritePairs(&buf, g, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := WritePairs(&buf, gen.Path(0), 5, 1); err != nil {
		t.Fatal(err)
	}
}

func TestReadPairsValidation(t *testing.T) {
	read := func(in string) ([]Pair, error) {
		var got []Pair
		err := ReadPairs(strings.NewReader(in), 10, func(p Pair) error {
			got = append(got, p)
			return nil
		})
		return got, err
	}

	got, err := read("1 2\n\n# comment\n% also comment\n  3\t4  \n")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (Pair{1, 2}) || got[1] != (Pair{3, 4}) {
		t.Fatalf("got %v", got)
	}

	for _, bad := range []string{"1\n", "1 2 3\n", "a b\n", "-1 2\n", "1 10\n", "1 99999999999\n"} {
		if _, err := read(bad); err == nil {
			t.Fatalf("input %q: want error", bad)
		}
	}

	// yield errors propagate.
	stop := errors.New("stop")
	err = ReadPairs(strings.NewReader("1 2\n3 4\n"), 10, func(Pair) error { return stop })
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want %v", err, stop)
	}
}
