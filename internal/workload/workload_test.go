package workload

import (
	"testing"

	"highway/internal/bfs"
	"highway/internal/core"
	"highway/internal/gen"
)

func TestRandomPairsDeterministic(t *testing.T) {
	g := gen.Cycle(100)
	a := RandomPairs(g, 50, 7)
	b := RandomPairs(g, 50, 7)
	if len(a) != 50 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different pairs")
		}
	}
	c := RandomPairs(g, 50, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds gave identical pairs")
	}
	if RandomPairs(gen.Path(0), 5, 1) != nil {
		t.Fatal("empty graph should yield nil pairs")
	}
}

func TestDistanceDistribution(t *testing.T) {
	g := gen.Path(4) // distances 0..3
	pairs := []Pair{{0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 3}}
	o := OracleFunc(func(s, u int32) int32 { return bfs.Dist(g, s, u) })
	d := DistanceDistribution(o, pairs)
	if d.Total != 5 || d.Unreachable != 0 {
		t.Fatalf("total=%d unreachable=%d", d.Total, d.Unreachable)
	}
	wantCounts := []int64{1, 1, 2, 1}
	for i, w := range wantCounts {
		if d.Counts[i] != w {
			t.Fatalf("Counts[%d] = %d, want %d", i, d.Counts[i], w)
		}
	}
	if d.Fraction(2) != 0.4 {
		t.Fatalf("Fraction(2) = %v", d.Fraction(2))
	}
	if d.Fraction(99) != 0 {
		t.Fatal("out-of-range fraction must be 0")
	}
	if got := d.Mean(); got != (0+1+2+2+3)/5.0 {
		t.Fatalf("Mean = %v", got)
	}
	if d.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestDistributionUnreachable(t *testing.T) {
	o := OracleFunc(func(s, u int32) int32 { return -1 })
	d := DistanceDistribution(o, []Pair{{0, 1}, {1, 2}})
	if d.Unreachable != 2 {
		t.Fatalf("unreachable = %d", d.Unreachable)
	}
	if d.Mean() != 0 {
		t.Fatal("mean over no reachable pairs must be 0")
	}
}

func TestPairCoverage(t *testing.T) {
	// Star graph, landmark = center: every pair's shortest path goes
	// through the center → coverage 1.0.
	g := gen.Star(20)
	ix, err := core.Build(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	pairs := RandomPairs(g, 200, 3)
	sr := ix.NewSearcher()
	cov := PairCoverage(ix, OracleFunc(sr.Distance), pairs)
	if cov != 1.0 {
		t.Fatalf("star coverage = %v, want 1.0", cov)
	}

	// Path graph with the landmark at one end: pairs strictly inside the
	// path are not covered.
	p := gen.Path(50)
	ixp, err := core.Build(p, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	srp := ixp.NewSearcher()
	covP := PairCoverage(ixp, OracleFunc(srp.Distance), []Pair{{10, 40}, {5, 45}, {0, 30}})
	// Only the pair touching the landmark (0,30) is covered.
	if covP <= 0.3 || covP >= 0.4 {
		t.Fatalf("path coverage = %v, want 1/3", covP)
	}
}

func TestPairCoverageAllUnreachable(t *testing.T) {
	o := OracleFunc(func(s, u int32) int32 { return -1 })
	b := bounderFunc(func(s, u int32) int32 { return -1 })
	if cov := PairCoverage(b, o, []Pair{{0, 1}}); cov != 0 {
		t.Fatalf("coverage = %v, want 0", cov)
	}
}

type bounderFunc func(s, t int32) int32

func (f bounderFunc) UpperBound(s, t int32) int32 { return f(s, t) }
