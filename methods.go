package highway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"highway/internal/bfs"
	"highway/internal/core"
	"highway/internal/dynhl"
	"highway/internal/fd"
	"highway/internal/isl"
	"highway/internal/method"
	"highway/internal/pll"
)

// The unified method API.
//
// Every distance labelling in this repository — the paper's highway
// cover labelling, its dynamic extension, and the three baselines the
// paper evaluates against — implements one interface (DistanceIndex)
// and registers under one name, so benchmarks, tools and servers can
// treat "a distance oracle" as a pluggable engine:
//
//	ix, err := highway.Build(ctx, g, "pll")
//	ix, err = highway.Build(ctx, g, "hl",
//	        highway.WithLandmarks(landmarks), highway.WithWorkers(8))
//	d := ix.Distance(12, 34)
//	err = ix.Save("g.pll.idx")
//	ix2, err := highway.LoadIndexAny("g.pll.idx", g)
//
// The per-method constructors (BuildIndex, BuildPLL, BuildFD, BuildISL,
// BuildDynamic, ...) remain as deprecated shims over the same
// implementations; new code should go through Build and the registry.

// DistanceIndex is the method-agnostic exact distance oracle every
// labelling implements: queries, label upper bounds, per-goroutine
// searchers, statistics and persistence. See internal/method for the
// contract details.
type DistanceIndex = method.DistanceIndex

// DistanceSearcher is the per-goroutine searcher interface returned by
// DistanceIndex.NewSearcher. The concrete highway cover Searcher (with
// Path) is still available via Index.Searcher.
type DistanceSearcher = method.Searcher

// BatchSearcher is the optional vectorized-execution capability: a
// searcher that answers many pairs in one call, amortizing per-source
// label work. The highway cover labelling and PLL opt in; discover a
// method's capabilities with IndexCapabilities.
type BatchSearcher = method.BatchSearcher

// SourceSearcher is the one-source-to-many-targets form of the batch
// capability.
type SourceSearcher = method.SourceSearcher

// MethodCapabilities records which optional interfaces an index and its
// searchers satisfy (batched execution, source-to-many execution,
// online insertion).
type MethodCapabilities = method.Capabilities

// IndexCapabilities probes an index for its optional capabilities; the
// serving layer uses the same discovery to pick the batch execution
// path.
func IndexCapabilities(ix DistanceIndex) MethodCapabilities {
	return method.CapabilitiesOf(ix)
}

// SearcherDistanceBatch answers all pairs through the searcher's best
// available path: its vectorized executor when it implements
// BatchSearcher, otherwise a pair-at-a-time loop. dst is reused when it
// has capacity and may be nil. Batched answers are always identical to
// pair-at-a-time answers — batching is an execution strategy, not a
// semantics change.
func SearcherDistanceBatch(sr DistanceSearcher, pairs [][2]int32, dst []int32) []int32 {
	return method.DistanceBatch(sr, pairs, dst)
}

// SearcherDistanceMany is the one-source-to-many counterpart of
// SearcherDistanceBatch.
func SearcherDistanceMany(sr DistanceSearcher, source int32, targets []int32, dst []int32) []int32 {
	return method.DistanceMany(sr, source, targets, dst)
}

// ErrUnknownMethod is wrapped by MethodByName, Build and LoadIndexAny
// when the requested method name is not registered; errors.Is
// distinguishes it from build and I/O failures.
var ErrUnknownMethod = errors.New("highway: unknown method")

// BuildConfig collects the cross-method build parameters; it is
// assembled from BuildOption values by Build. The zero value selects 20
// degree-ranked landmarks (clamped to n), all cores, and each method's
// default configuration.
type BuildConfig struct {
	// Landmarks is the explicit landmark set for the landmark-based
	// methods (hl, fd, dynhl). When nil, LandmarkCount landmarks are
	// selected with Strategy/Seed. PLL and IS-L ignore it.
	Landmarks []int32
	// LandmarkCount is the number of landmarks to select when Landmarks
	// is nil (default 20, the paper's setting; clamped to n).
	LandmarkCount int
	// Strategy selects the landmark strategy (default ByDegree).
	Strategy LandmarkStrategy
	// Seed feeds the randomized landmark strategies.
	Seed int64
	// Workers is the parallel build width where the method supports it
	// (hl; 0 = all cores, 1 = the paper's sequential HL).
	Workers int
	// Direction is the hl traversal-direction knob (DirectionAuto
	// default).
	Direction BuildDirection
	// Progress, when non-nil, receives (done, total) build progress
	// where the method reports it (hl).
	Progress func(done, total int)
	// BitParallel enables bit-parallel trees: for pll the tree count
	// (the paper runs 50), for fd any value > 0 selects the "20+64"
	// configuration (one tree per landmark).
	BitParallel int
	// ISL configures the IS-Label hierarchy (DefaultOptions when zero).
	ISL ISLOptions
}

// BuildOption customizes Build.
type BuildOption func(*BuildConfig)

// WithLandmarks pins the landmark set for the landmark-based methods
// (hl, fd, dynhl), bypassing strategy selection.
func WithLandmarks(landmarks []int32) BuildOption {
	return func(c *BuildConfig) { c.Landmarks = landmarks }
}

// WithLandmarkCount selects k landmarks with the configured strategy
// (clamped to the vertex count).
func WithLandmarkCount(k int) BuildOption {
	return func(c *BuildConfig) { c.LandmarkCount = k }
}

// WithStrategy selects the landmark strategy used when no explicit
// landmark set is given.
func WithStrategy(s LandmarkStrategy) BuildOption {
	return func(c *BuildConfig) { c.Strategy = s }
}

// WithSeed seeds the randomized landmark strategies.
func WithSeed(seed int64) BuildOption {
	return func(c *BuildConfig) { c.Seed = seed }
}

// WithWorkers sets the parallel build width (0 = all cores, 1 =
// sequential).
func WithWorkers(workers int) BuildOption {
	return func(c *BuildConfig) { c.Workers = workers }
}

// WithDirection sets the traversal direction of the hl builder.
func WithDirection(d BuildDirection) BuildOption {
	return func(c *BuildConfig) { c.Direction = d }
}

// WithProgress installs a build progress callback.
func WithProgress(fn func(done, total int)) BuildOption {
	return func(c *BuildConfig) { c.Progress = fn }
}

// WithBitParallel enables bit-parallel trees (pll: tree count, fd: any
// value > 0 enables one tree per landmark).
func WithBitParallel(n int) BuildOption {
	return func(c *BuildConfig) { c.BitParallel = n }
}

// WithISLOptions configures the IS-Label hierarchy.
func WithISLOptions(opt ISLOptions) BuildOption {
	return func(c *BuildConfig) { c.ISL = opt }
}

// Method describes one registered labelling method.
type Method struct {
	// Name is the registry key ("hl", "pll", "fd", "isl", "dynhl").
	Name string
	// Aliases are accepted alternative spellings (e.g. "is-l").
	Aliases []string
	// Description is a one-line summary for CLI help output.
	Description string
	// Dynamic reports whether the method supports exact online edge
	// insertion (and can therefore be served live).
	Dynamic bool
	// Landmarks reports whether the method consumes a landmark set.
	Landmarks bool

	build func(ctx context.Context, g *Graph, cfg *BuildConfig) (DistanceIndex, error)
	read  func(r io.Reader, g *Graph) (DistanceIndex, error)
}

// methodRegistry holds the five labellings in canonical order: the
// paper's method first, then its dynamic extension, then the baselines
// in the order the paper introduces them.
var methodRegistry = []Method{
	{
		Name:        "hl",
		Aliases:     []string{"highway", "hl-p"},
		Description: "highway cover labelling (the paper's method; parallel direction-optimizing build)",
		Landmarks:   true,
		build: func(ctx context.Context, g *Graph, cfg *BuildConfig) (DistanceIndex, error) {
			lm, err := cfg.landmarksFor(g)
			if err != nil {
				return nil, err
			}
			return core.BuildOpts(ctx, g, lm, core.Options{
				Workers:   cfg.Workers,
				Direction: cfg.Direction,
				Progress:  cfg.Progress,
			})
		},
		read: func(r io.Reader, g *Graph) (DistanceIndex, error) { return core.Read(r, g) },
	},
	{
		Name:        "dynhl",
		Aliases:     []string{"dynamic", "dyn"},
		Description: "dynamic highway cover labelling (exact online edge insertion by selective landmark rebuild)",
		Dynamic:     true,
		Landmarks:   true,
		build: func(ctx context.Context, g *Graph, cfg *BuildConfig) (DistanceIndex, error) {
			lm, err := cfg.landmarksFor(g)
			if err != nil {
				return nil, err
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return dynhl.Build(g, lm)
		},
		read: func(r io.Reader, g *Graph) (DistanceIndex, error) { return dynhl.Read(r, g) },
	},
	{
		Name:        "pll",
		Description: "pruned landmark labelling (Akiba et al. 2013; 2-hop cover, optional bit-parallel trees)",
		build: func(ctx context.Context, g *Graph, cfg *BuildConfig) (DistanceIndex, error) {
			if cfg.BitParallel > 0 {
				return pll.BuildBP(ctx, g, cfg.BitParallel)
			}
			return pll.Build(ctx, g)
		},
		read: func(r io.Reader, g *Graph) (DistanceIndex, error) { return pll.Read(r, g) },
	},
	{
		Name:        "fd",
		Description: "fully dynamic landmark SPTs (Hayashi et al. 2016; optional bit-parallel trees)",
		Dynamic:     true,
		Landmarks:   true,
		build: func(ctx context.Context, g *Graph, cfg *BuildConfig) (DistanceIndex, error) {
			lm, err := cfg.landmarksFor(g)
			if err != nil {
				return nil, err
			}
			if cfg.BitParallel > 0 {
				return fd.BuildBP(ctx, g, lm)
			}
			return fd.Build(ctx, g, lm)
		},
		read: func(r io.Reader, g *Graph) (DistanceIndex, error) { return fd.Read(r, g) },
	},
	{
		Name:        "isl",
		Aliases:     []string{"is-l", "islabel"},
		Description: "IS-Label (Fu et al. 2013; independent-set hierarchy over a weighted core)",
		build: func(ctx context.Context, g *Graph, cfg *BuildConfig) (DistanceIndex, error) {
			opt := cfg.ISL
			if opt.Levels == 0 {
				opt = isl.DefaultOptions()
			}
			return isl.Build(ctx, g, opt)
		},
		read: func(r io.Reader, g *Graph) (DistanceIndex, error) { return isl.Read(r, g) },
	},
}

// landmarksFor resolves the configured landmark set for g: the explicit
// set when given, otherwise LandmarkCount (default 20, clamped to n)
// landmarks under Strategy/Seed.
func (c *BuildConfig) landmarksFor(g *Graph) ([]int32, error) {
	if c.Landmarks != nil {
		return c.Landmarks, nil
	}
	k := c.LandmarkCount
	if k <= 0 {
		k = 20
	}
	if n := g.NumVertices(); k > n {
		k = n
	}
	return SelectLandmarks(g, k, c.Strategy, c.Seed)
}

// Methods returns the registered methods in canonical order. The
// returned slice is a copy; mutating it does not affect the registry.
func Methods() []Method {
	return append([]Method(nil), methodRegistry...)
}

// MethodNames returns the canonical registry names in order.
func MethodNames() []string {
	names := make([]string, len(methodRegistry))
	for i, m := range methodRegistry {
		names[i] = m.Name
	}
	return names
}

// MethodByName resolves a method name or alias (case-insensitive).
// Unknown names return an error wrapping ErrUnknownMethod that lists
// the registered names.
func MethodByName(name string) (Method, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		return Method{}, fmt.Errorf("%w: empty name (known: %s)", ErrUnknownMethod, strings.Join(MethodNames(), ", "))
	}
	for _, m := range methodRegistry {
		if m.Name == key {
			return m, nil
		}
		for _, a := range m.Aliases {
			if a == key {
				return m, nil
			}
		}
	}
	return Method{}, fmt.Errorf("%w: %q (known: %s)", ErrUnknownMethod, name, strings.Join(MethodNames(), ", "))
}

// Build constructs the named method's index over g. It is the single
// entry point behind which every labelling builds:
//
//	ix, err := highway.Build(ctx, g, "fd",
//	        highway.WithLandmarks(lm), highway.WithBitParallel(1))
//
// The context cancels long builds; options not meaningful to the method
// are ignored (so one option set can drive a sweep across methods).
func Build(ctx context.Context, g *Graph, methodName string, opts ...BuildOption) (DistanceIndex, error) {
	m, err := MethodByName(methodName)
	if err != nil {
		return nil, err
	}
	var cfg BuildConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return m.build(ctx, g, &cfg)
}

// Read deserializes the method's index from a stream (the counterpart
// of DistanceIndex Write-style streams; see LoadIndexAny for files).
func (m Method) Read(r io.Reader, g *Graph) (DistanceIndex, error) { return m.read(r, g) }

// SniffIndexMethod reports which method wrote an index file, without
// decoding it: the v2 method tag, or "hl" for untagged v2 and v1 files.
func SniffIndexMethod(path string) (string, error) {
	return method.SniffFileTag(path)
}

// LoadIndexAny reads an index file written by any registered method's
// Save and attaches it to g: the file's method tag selects the decoder
// (untagged files are highway cover indexes), so one loader round-trips
// every method:
//
//	ix, _ := highway.Build(ctx, g, "isl")
//	_ = ix.Save("g.isl.idx")
//	back, _ := highway.LoadIndexAny("g.isl.idx", g) // an IS-L index again
func LoadIndexAny(path string, g *Graph) (DistanceIndex, error) {
	tag, err := SniffIndexMethod(path)
	if err != nil {
		return nil, err
	}
	m, err := MethodByName(tag)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return m.read(f, g)
}

// VerifyIndex cross-checks any method's index against ground-truth BFS
// on samples random pairs (deterministic per seed), returning an error
// describing the first mismatch. The generic counterpart of
// Index.Verify, used by hlbuild -method -verify. Ground truth is one
// full BFS per distinct source into a reused buffer.
func VerifyIndex(g *Graph, ix DistanceIndex, samples int, seed int64) error {
	n := g.NumVertices()
	if n == 0 || samples <= 0 {
		return nil
	}
	sr := ix.NewSearcher()
	rng := rand.New(rand.NewSource(seed))
	var truth []int32
	truthSrc := int32(-1)
	for i := 0; i < samples; i++ {
		s, t := int32(rng.Intn(n)), int32(rng.Intn(n))
		want := int32(0)
		if s != t {
			if truthSrc != s {
				truth = bfs.DistancesReuse(g, s, truth)
				truthSrc = s
			}
			want = truth[t]
		}
		if got := sr.Distance(s, t); got != want {
			return fmt.Errorf("highway: verify: Distance(%d,%d) = %d, BFS says %d", s, t, got, want)
		}
	}
	return nil
}
