package highway_test

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"highway"
	"highway/internal/oracle"
)

// TestMethodRegistry pins the registry contents and the name-resolution
// error taxonomy.
func TestMethodRegistry(t *testing.T) {
	want := []string{"hl", "dynhl", "pll", "fd", "isl"}
	got := highway.MethodNames()
	if len(got) != len(want) {
		t.Fatalf("MethodNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MethodNames() = %v, want %v", got, want)
		}
	}
	for _, m := range highway.Methods() {
		if m.Description == "" {
			t.Errorf("method %q has no description", m.Name)
		}
	}

	t.Run("aliases and case", func(t *testing.T) {
		for name, canonical := range map[string]string{
			"hl": "hl", "HL": "hl", "highway": "hl", "hl-p": "hl",
			"IS-L": "isl", "islabel": "isl",
			"dynamic": "dynhl", "dyn": "dynhl",
			" fd ": "fd", "PLL": "pll",
		} {
			m, err := highway.MethodByName(name)
			if err != nil {
				t.Fatalf("MethodByName(%q): %v", name, err)
			}
			if m.Name != canonical {
				t.Fatalf("MethodByName(%q) = %q, want %q", name, m.Name, canonical)
			}
		}
	})

	t.Run("unknown name", func(t *testing.T) {
		for _, name := range []string{"", "bfs", "hl2", "landmark"} {
			_, err := highway.MethodByName(name)
			if !errors.Is(err, highway.ErrUnknownMethod) {
				t.Fatalf("MethodByName(%q) error = %v, want ErrUnknownMethod", name, err)
			}
			// The error must teach the caller the valid names.
			for _, known := range highway.MethodNames() {
				if !strings.Contains(err.Error(), known) {
					t.Fatalf("error %q does not list method %q", err, known)
				}
			}
			if _, err := highway.Build(context.Background(), testGraphSmall(t), name); !errors.Is(err, highway.ErrUnknownMethod) {
				t.Fatalf("Build(%q) error = %v, want ErrUnknownMethod", name, err)
			}
		}
	})

	t.Run("dynamic flags", func(t *testing.T) {
		dyn := map[string]bool{"dynhl": true, "fd": true}
		for _, m := range highway.Methods() {
			if m.Dynamic != dyn[m.Name] {
				t.Fatalf("method %q Dynamic = %v", m.Name, m.Dynamic)
			}
		}
	})
}

func testGraphSmall(t *testing.T) *highway.Graph {
	t.Helper()
	return highway.BarabasiAlbert(200, 3, 7)
}

// buildOptionsFor keeps per-method test configuration in one place:
// small landmark counts so the corner-case graphs stay buildable.
func buildOptionsFor(name string) []highway.BuildOption {
	opts := []highway.BuildOption{highway.WithLandmarkCount(4)}
	if name == "pll" || name == "fd" {
		// Exercise the bit-parallel variants through the same entry point.
		opts = append(opts, highway.WithBitParallel(4))
	}
	return opts
}

// TestBuildMethodsOracle holds every registered method, built through
// highway.Build, to the shared differential suite: corner-case graphs
// checked on all pairs, through every surface of the DistanceIndex
// contract (Distance, Searcher, UpperBound admissibility, Stats).
func TestBuildMethodsOracle(t *testing.T) {
	for _, m := range highway.Methods() {
		t.Run(m.Name, func(t *testing.T) {
			oracle.CheckIndexCases(t, func(t *testing.T, g *oracleGraph) highway.DistanceIndex {
				ix, err := highway.Build(context.Background(), g, m.Name, buildOptionsFor(m.Name)...)
				if err != nil {
					t.Fatalf("Build(%q): %v", m.Name, err)
				}
				if got := ix.Stats().Method; got != m.Name {
					t.Fatalf("Stats().Method = %q, want %q", got, m.Name)
				}
				return ix
			})
		})
	}
}

// oracleGraph aliases the internal graph type for the test callbacks
// (highway.Graph is the same alias).
type oracleGraph = highway.Graph

// TestMethodRoundTrip pins Build → Save → LoadIndexAny for every
// registered method: the tag survives, the loaded index answers every
// pair identically, and the entry counts agree.
func TestMethodRoundTrip(t *testing.T) {
	g := testGraphSmall(t)
	pairs := oracle.SampledPairs(g.NumVertices(), 300, 11)
	for _, m := range highway.Methods() {
		t.Run(m.Name, func(t *testing.T) {
			ix, err := highway.Build(context.Background(), g, m.Name, buildOptionsFor(m.Name)...)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), m.Name+".idx")
			if err := ix.Save(path); err != nil {
				t.Fatalf("Save: %v", err)
			}
			tag, err := highway.SniffIndexMethod(path)
			if err != nil {
				t.Fatalf("SniffIndexMethod: %v", err)
			}
			if tag != m.Name {
				t.Fatalf("sniffed method %q, want %q", tag, m.Name)
			}
			back, err := highway.LoadIndexAny(path, g)
			if err != nil {
				t.Fatalf("LoadIndexAny: %v", err)
			}
			st, bst := ix.Stats(), back.Stats()
			if st.Method != bst.Method || st.NumEntries != bst.NumEntries || st.NumLandmarks != bst.NumLandmarks {
				t.Fatalf("stats changed across the round trip:\n  saved  %+v\n  loaded %+v", st, bst)
			}
			sr, bsr := ix.NewSearcher(), back.NewSearcher()
			for _, p := range pairs {
				if got, want := bsr.Distance(p[0], p[1]), sr.Distance(p[0], p[1]); got != want {
					t.Fatalf("loaded Distance(%d,%d) = %d, original %d", p[0], p[1], got, want)
				}
			}
			if err := oracle.DiffIndex(g, back, pairs); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMethodRoundTripDynamic pins the dynamic methods' evolved state
// across Save/Load: insertions made before Save must be visible after
// LoadIndexAny (dynhl embeds its evolved graph; fd persists its
// overlay).
func TestMethodRoundTripDynamic(t *testing.T) {
	g := testGraphSmall(t)
	edges := [][2]int32{{0, 150}, {3, 199}, {17, 101}}
	for _, name := range []string{"dynhl", "fd"} {
		t.Run(name, func(t *testing.T) {
			ix, err := highway.Build(context.Background(), g, name, highway.WithLandmarkCount(4))
			if err != nil {
				t.Fatal(err)
			}
			ins, ok := ix.(interface{ InsertEdge(a, b int32) error })
			if !ok {
				t.Fatalf("%s index does not expose InsertEdge", name)
			}
			for _, e := range edges {
				if err := ins.InsertEdge(e[0], e[1]); err != nil {
					t.Fatal(err)
				}
			}
			path := filepath.Join(t.TempDir(), name+".idx")
			if err := ix.Save(path); err != nil {
				t.Fatal(err)
			}
			back, err := highway.LoadIndexAny(path, g)
			if err != nil {
				t.Fatal(err)
			}
			sr, bsr := ix.NewSearcher(), back.NewSearcher()
			for _, e := range edges {
				if d := bsr.Distance(e[0], e[1]); d != 1 {
					t.Fatalf("inserted edge {%d,%d} lost across round trip: distance %d", e[0], e[1], d)
				}
			}
			for _, p := range oracle.SampledPairs(g.NumVertices(), 200, 13) {
				if got, want := bsr.Distance(p[0], p[1]), sr.Distance(p[0], p[1]); got != want {
					t.Fatalf("loaded Distance(%d,%d) = %d, original %d", p[0], p[1], got, want)
				}
			}
		})
	}
}

// TestLoadIndexCrossMethod pins the failure modes: loading another
// method's file through the core-only LoadIndex names the actual
// method, and untagged (core) files load as "hl" through LoadIndexAny.
func TestLoadIndexCrossMethod(t *testing.T) {
	g := testGraphSmall(t)
	ctx := context.Background()

	pllIx, err := highway.Build(ctx, g, "pll")
	if err != nil {
		t.Fatal(err)
	}
	pllPath := filepath.Join(t.TempDir(), "g.pll.idx")
	if err := pllIx.Save(pllPath); err != nil {
		t.Fatal(err)
	}
	if _, err := highway.LoadIndex(pllPath, g); err == nil || !strings.Contains(err.Error(), `"pll"`) {
		t.Fatalf("LoadIndex on a pll file: err = %v, want it to name the method", err)
	}

	hlIx, err := highway.Build(ctx, g, "hl", highway.WithLandmarkCount(8))
	if err != nil {
		t.Fatal(err)
	}
	hlPath := filepath.Join(t.TempDir(), "g.idx")
	if err := hlIx.Save(hlPath); err != nil {
		t.Fatal(err)
	}
	if tag, err := highway.SniffIndexMethod(hlPath); err != nil || tag != "hl" {
		t.Fatalf("SniffIndexMethod(core file) = %q, %v; want \"hl\"", tag, err)
	}
	back, err := highway.LoadIndexAny(hlPath, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Stats().Method; got != "hl" {
		t.Fatalf("loaded core index reports method %q", got)
	}
}

// TestBuildOptions exercises the functional options through observable
// effects: explicit landmarks are honored, worker count does not change
// the labelling, progress fires, and the method-agnostic server serves
// any built index.
func TestBuildOptions(t *testing.T) {
	g := testGraphSmall(t)
	ctx := context.Background()
	lm, err := highway.SelectLandmarks(g, 6, highway.ByDegree, 0)
	if err != nil {
		t.Fatal(err)
	}

	var calls int
	ix, err := highway.Build(ctx, g, "hl",
		highway.WithLandmarks(lm),
		highway.WithWorkers(1),
		highway.WithDirection(highway.DirectionTopDown),
		highway.WithProgress(func(done, total int) { calls++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("WithProgress callback never fired")
	}
	if got := ix.Stats().NumLandmarks; got != len(lm) {
		t.Fatalf("NumLandmarks = %d, want %d", got, len(lm))
	}

	par, err := highway.Build(ctx, g, "hl", highway.WithLandmarks(lm))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range oracle.SampledPairs(g.NumVertices(), 200, 3) {
		if a, b := ix.Distance(p[0], p[1]), par.Distance(p[0], p[1]); a != b {
			t.Fatalf("sequential/parallel builds disagree on (%d,%d): %d vs %d", p[0], p[1], a, b)
		}
	}

	srv := highway.NewServerFor(ix, highway.ServeConfig{})
	d, err := srv.Distance(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := ix.Distance(0, 1); d != want {
		t.Fatalf("served distance %d, index says %d", d, want)
	}
}
